"""Tests for path cardinality (Definition 6, Table I) and predicted shapes."""

from repro.shape import (
    Card,
    Shape,
    ShapeType,
    extract_shape,
    path_cardinality,
    path_cardinality_table,
    predicted_shape,
)
from repro.shape.dataguide import DataGuideBuilder


def vertex(shape, dotted):
    for t in shape.types():
        if t.source.dotted == dotted:
            return t
    raise AssertionError(f"no type {dotted}")


class TestPathCardinalityFig1C:
    """Path cardinalities of the normalized bibliography shape.

    This is the reproduction of the paper's Table I ("path cardinality
    for every pair of types" of the bibliography shape): the exact panel
    lettering of Figure 5 is not visible in the text, so we assert the
    values our instance (c) implies.
    """

    def card(self, fig1c, src, dst):
        shape = extract_shape(fig1c)
        return path_cardinality(shape, vertex(shape, src), vertex(shape, dst))

    def test_downward_single_edge(self, fig1c):
        assert self.card(fig1c, "data", "data.author") == Card(1, 1)

    def test_grouping_edge_multiplies(self, fig1c):
        # One author holds both books: author -> book is 2..2.
        assert self.card(fig1c, "data.author", "data.author.book") == Card(2, 2)
        # ... and so is any path through it.
        assert self.card(fig1c, "data", "data.author.book.title") == Card(2, 2)

    def test_upward_is_one(self, fig1c):
        # From title up to its ancestors: always 1..1 (Definition 6).
        assert self.card(fig1c, "data.author.book.title", "data.author.book") == Card(1, 1)
        assert self.card(fig1c, "data.author.book.title", "data") == Card(1, 1)

    def test_sibling_pairs(self, fig1c):
        assert self.card(
            fig1c, "data.author.book.title", "data.author.book.publisher"
        ) == Card(1, 1)
        # name -> book goes up to author then down the 2..2 edge.
        assert self.card(fig1c, "data.author.name", "data.author.book") == Card(2, 2)
        # book -> author's name: up to author, down 1..1.
        assert self.card(fig1c, "data.author.book", "data.author.name") == Card(1, 1)

    def test_self_pair_is_identity(self, fig1c):
        assert self.card(fig1c, "data.author.book", "data.author.book") == Card(1, 1)

    def test_table_covers_all_pairs(self, fig1c):
        shape = extract_shape(fig1c)
        table = path_cardinality_table(shape)
        count = len(shape.types())
        assert len(table) == count * count

    def test_optional_name_zero_minimum(self, fig1a_optional_name):
        shape = extract_shape(fig1a_optional_name)
        card = path_cardinality(
            shape,
            vertex(shape, "data.book"),
            vertex(shape, "data.book.author.name"),
        )
        assert card == Card(0, 1)


class TestAcrossTrees:
    def test_disconnected_pair_is_none(self):
        from repro.shape.types import TypeTable

        table = TypeTable()
        first = ShapeType.for_source(table.intern(("a",)))
        second = ShapeType.for_source(table.intern(("b",)))
        shape = Shape()
        shape.add_type(first)
        shape.add_type(second)
        assert path_cardinality(shape, first, second) is None
        assert path_cardinality_table(shape) == {
            (first, first): Card(1, 1),
            (second, second): Card(1, 1),
        }


class TestPredictedShape:
    def test_predicts_from_source_pathcard(self, fig1a):
        builder = DataGuideBuilder().build(fig1a)
        source = builder.shape

        author = ShapeType.for_source(builder.type_table.match_label("author")[0])
        name = ShapeType.for_source(builder.type_table.match_label("author.name")[0])
        book = ShapeType.for_source(builder.type_table.match_label("book")[0])
        title = ShapeType.for_source(builder.type_table.match_label("title")[0])

        target = Shape()
        target.add_edge(author, name)
        target.add_edge(author, book)
        target.add_edge(book, title)

        predicted = predicted_shape(source, target, builder.shape_of.get)
        # In instance (a), book is the *parent* of author, so the
        # author -> book path cardinality is the upward 1..1.
        assert predicted.card(author, book) == Card(1, 1)
        assert predicted.card(author, name) == Card(1, 1)
        assert predicted.card(book, title) == Card(1, 1)

    def test_new_types_get_one_one(self, fig1a):
        builder = DataGuideBuilder().build(fig1a)
        wrapper = ShapeType.new("scribe")
        author = ShapeType.for_source(builder.type_table.match_label("author")[0])
        target = Shape()
        target.add_edge(wrapper, author, Card(0, 7))
        predicted = predicted_shape(builder.shape, target, builder.shape_of.get)
        assert predicted.card(wrapper, author) == Card(1, 1)

    def test_grouping_fanout_predicted(self, fig1c):
        builder = DataGuideBuilder().build(fig1c)
        # Target: title under name — in (c) name -> title goes up to
        # author, then down through the 2..2 book edge: predicted 2..2.
        name = ShapeType.for_source(builder.type_table.match_label("author.name")[0])
        title = ShapeType.for_source(builder.type_table.match_label("title")[0])
        target = Shape()
        target.add_edge(name, title)
        predicted = predicted_shape(builder.shape, target, builder.shape_of.get)
        assert predicted.card(name, title) == Card(2, 2)
