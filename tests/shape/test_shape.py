"""Tests for the Shape forest data structure."""

import pytest

from repro.shape import Card, Shape, ShapeType
from repro.shape.shape import map_types
from repro.shape.types import TypeTable


def make_types(*names):
    table = TypeTable()
    built = []
    path = ()
    for name in names:
        path = path + (name,)
        built.append(ShapeType.for_source(table.intern(path)))
    return built


def chain(*names):
    """A root-to-leaf chain shape; returns (shape, [types])."""
    types = make_types(*names)
    shape = Shape()
    for parent, child in zip(types, types[1:]):
        shape.add_edge(parent, child)
    if len(types) == 1:
        shape.add_type(types[0])
    return shape, types


class TestBasics:
    def test_single(self):
        t = make_types("a")[0]
        shape = Shape.single(t)
        assert shape.types() == [t]
        assert shape.roots() == [t]
        assert shape.children(t) == []

    def test_add_edge_sets_parent(self):
        shape, (a, b, c) = chain("a", "b", "c")
        assert shape.parent(b) is a
        assert shape.children(a) == [b]
        assert shape.roots() == [a]
        assert shape.card(a, b) == Card.exactly_one()

    def test_add_edge_rewires_existing_parent(self):
        shape, (a, b, c) = chain("a", "b", "c")
        shape.add_edge(a, c, Card(0, 1))
        assert shape.parent(c) is a
        assert shape.children(b) == []
        assert shape.card(a, c) == Card(0, 1)

    def test_cycle_rejected(self):
        shape, (a, b, c) = chain("a", "b", "c")
        with pytest.raises(ValueError):
            shape.add_edge(c, a)
        with pytest.raises(ValueError):
            shape.add_edge(a, a)

    def test_detach_makes_root(self):
        shape, (a, b, c) = chain("a", "b", "c")
        shape.detach(b)
        assert set(shape.roots()) == {a, b}
        assert shape.parent(b) is None
        assert shape.parent(c) is b

    def test_set_card(self):
        shape, (a, b, _) = chain("a", "b", "c")
        shape.set_card(a, b, Card(0, 5))
        assert shape.card(a, b) == Card(0, 5)
        with pytest.raises(KeyError):
            shape.set_card(b, a, Card(1, 1))


class TestRemoval:
    def test_remove_type_hoists_children(self):
        shape, (a, b, c) = chain("a", "b", "c")
        shape.remove_type(b)
        assert b not in shape
        assert shape.parent(c) is a
        assert shape.children(a) == [c]

    def test_remove_root_makes_children_roots(self):
        shape, (a, b, c) = chain("a", "b", "c")
        shape.remove_type(a)
        assert shape.roots() == [b]

    def test_remove_subtree(self):
        shape, (a, b, c) = chain("a", "b", "c")
        shape.remove_type(b, hoist=False)
        assert shape.types() == [a]

    def test_remove_missing_is_noop(self):
        shape, _ = chain("a", "b")
        stranger = make_types("x")[0]
        shape.remove_type(stranger)


class TestGeometry:
    def test_lca_and_distance(self):
        types = make_types("r", "x")
        r, x = types
        y = ShapeType.for_source(x.source)  # sibling vertex, same data type
        shape = Shape()
        shape.add_edge(r, x)
        shape.add_edge(r, y)
        assert shape.lca(x, y) is r
        assert shape.tree_distance(x, y) == 2
        assert shape.tree_distance(r, x) == 1
        assert shape.tree_distance(x, x) == 0

    def test_distance_across_trees_is_none(self):
        shape = Shape()
        a, b = make_types("a")[0], make_types("b")[0]
        shape.add_type(a)
        shape.add_type(b)
        assert shape.lca(a, b) is None
        assert shape.tree_distance(a, b) is None

    def test_path_down(self):
        shape, (a, b, c) = chain("a", "b", "c")
        edges = shape.path_down(a, c)
        assert [(e.parent, e.child) for e in edges] == [(a, b), (b, c)]
        with pytest.raises(ValueError):
            shape.path_down(c, a)

    def test_depth_and_root_of(self):
        shape, (a, b, c) = chain("a", "b", "c")
        assert shape.depth(c) == 2
        assert shape.root_of(c) is a

    def test_subtree(self):
        shape, (a, b, c) = chain("a", "b", "c")
        sub = shape.subtree(b)
        assert set(sub.types()) == {b, c}
        assert sub.roots() == [b]
        # Copy: edits to the subtree don't touch the original.
        sub.detach(c)
        assert shape.parent(c) is b


class TestCombination:
    def test_union_merges_disjoint(self):
        first, (a, b) = chain("a", "b")
        second, (x, y) = chain("x", "y")
        first.union(second)
        assert set(first.roots()) == {a, x}
        assert first.edge_count() == 2

    def test_copy_is_independent(self):
        shape, (a, b, c) = chain("a", "b", "c")
        duplicate = shape.copy()
        duplicate.remove_type(b)
        assert b in shape and b not in duplicate

    def test_map_types_clones_structure(self):
        shape, (a, b, c) = chain("a", "b", "c")
        mapped = map_types(shape, lambda t: t.clone())
        assert mapped.fingerprint() == shape.fingerprint()
        assert not any(t in shape for t in mapped.types())


class TestDisplay:
    def test_fingerprint_ignores_sibling_order(self):
        r1, x1 = make_types("r", "x")
        y1 = make_types("r", "y")[1]
        first = Shape()
        first.add_edge(r1, x1)
        first.add_edge(r1, y1)

        r2, y2 = make_types("r", "y")
        x2 = make_types("r", "x")[1]
        second = Shape()
        second.add_edge(r2, y2)
        second.add_edge(r2, x2)
        assert first.fingerprint() == second.fingerprint()

    def test_pretty_renders_tree(self):
        shape, (a, b, c) = chain("a", "b", "c")
        text = shape.pretty()
        assert text.splitlines()[0] == "a"
        assert "  b [1..1]" in text
        assert "    c [1..1]" in text

    def test_walk_yields_depths(self):
        shape, (a, b, c) = chain("a", "b", "c")
        assert list(shape.walk()) == [(a, 0), (b, 1), (c, 2)]
