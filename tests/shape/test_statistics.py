"""Tests for shape/collection statistics."""

import pytest

from repro.closeness import DocumentIndex
from repro.shape import extract_shape
from repro.shape.statistics import collection_statistics, shape_depth_histogram
from repro.workloads import generate_dblp, generate_nasa
from repro.xmltree import parse_document


class TestCollectionStatistics:
    def test_fig1a_counts(self, fig1a):
        stats = collection_statistics(fig1a)
        assert stats.type_count == 7
        assert stats.node_count == fig1a.node_count()
        assert stats.max_depth == 3  # data.book.author.name
        assert stats.leaf_types == 3  # title, author.name, publisher.name

    def test_depth_average_weighted_by_instances(self):
        forest = parse_document("<r><a/><a/><a/><b><c/></b></r>")
        stats = collection_statistics(forest)
        # nodes: r(0), a(1)x3, b(1), c(2) -> avg = (0+1+1+1+1+2)/6
        assert stats.average_depth == pytest.approx(1.0)

    def test_attribute_types_counted(self):
        forest = parse_document('<r><x id="1"/><x id="2"/></r>')
        stats = collection_statistics(forest)
        assert stats.attribute_types == 1

    def test_text_density_orders_datasets(self):
        nasa = collection_statistics(generate_nasa(20))
        dblp = collection_statistics(generate_dblp(160))
        assert nasa.text_density > dblp.text_density

    def test_accepts_prebuilt_index(self, fig1a):
        index = DocumentIndex(fig1a)
        assert collection_statistics(index).node_count == fig1a.node_count()

    def test_pretty(self, fig1a):
        text = collection_statistics(fig1a).pretty()
        assert "types:" in text and "text:" in text


class TestDepthHistogram:
    def test_fig1a_histogram(self, fig1a):
        histogram = shape_depth_histogram(extract_shape(fig1a))
        assert histogram == {0: 1, 1: 1, 2: 3, 3: 2}

    def test_deep_vs_bushy_fingerprint(self):
        deep = extract_shape(parse_document("<a><b><c><d/></c></b></a>"))
        bushy = extract_shape(parse_document("<a><b/><c/><d/></a>"))
        assert shape_depth_histogram(deep) == {0: 1, 1: 1, 2: 1, 3: 1}
        assert shape_depth_histogram(bushy) == {0: 1, 1: 3}
