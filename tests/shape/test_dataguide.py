"""Tests for adorned-shape (DataGuide) extraction — paper Figure 5."""

from repro.shape import Card, extract_shape
from repro.shape.dataguide import DataGuideBuilder


def edge_map(shape):
    """{(parent dotted, child dotted): card} for easy assertions."""
    return {
        (edge.parent.source.dotted, edge.child.source.dotted): edge.card
        for edge in shape.edges()
    }


class TestFig1Shapes:
    def test_fig1a_structure(self, fig1a):
        shape = extract_shape(fig1a)
        edges = edge_map(shape)
        assert edges[("data", "data.book")] == Card(2, 2)
        assert edges[("data.book", "data.book.title")] == Card(1, 1)
        assert edges[("data.book", "data.book.author")] == Card(1, 1)
        assert edges[("data.book.author", "data.book.author.name")] == Card(1, 1)
        assert edges[("data.book", "data.book.publisher")] == Card(1, 1)
        assert len(shape.roots()) == 1
        assert shape.roots()[0].source.dotted == "data"

    def test_fig1c_grouping_cardinality(self, fig1c):
        shape = extract_shape(fig1c)
        edges = edge_map(shape)
        # One author groups both books.
        assert edges[("data.author", "data.author.book")] == Card(2, 2)
        assert edges[("data", "data.author")] == Card(1, 1)

    def test_optional_child_drops_minimum(self, fig1a_optional_name):
        # Paper Section IV: "assume the leftmost author does not have a
        # name ... the edge from author to name would be labeled 0..1".
        shape = extract_shape(fig1a_optional_name)
        edges = edge_map(shape)
        assert edges[("data.book.author", "data.book.author.name")] == Card(0, 1)

    def test_leaf_types_have_no_outgoing_edges(self, fig1a):
        shape = extract_shape(fig1a)
        titles = [t for t in shape.types() if t.source.name == "title"]
        assert titles and all(not shape.children(t) for t in titles)


class TestBuilderMaps:
    def test_type_of_maps_every_node(self, fig1b):
        builder = DataGuideBuilder().build(fig1b)
        for node in fig1b.iter_nodes():
            data_type = builder.type_of[id(node)]
            assert data_type.path == node.type_path()

    def test_shape_of_covers_all_types(self, fig1b):
        builder = DataGuideBuilder().build(fig1b)
        assert set(builder.shape_of) == set(builder.type_table)

    def test_shape_vertex_count_matches_types(self, fig1b):
        builder = DataGuideBuilder().build(fig1b)
        assert len(builder.shape) == len(builder.type_table)

    def test_same_name_different_paths_are_distinct_types(self, fig1c):
        builder = DataGuideBuilder().build(fig1c)
        names = builder.type_table.match_label("name")
        # data.author.name and data.author.book.publisher.name
        assert {t.dotted for t in names} == {
            "data.author.name",
            "data.author.book.publisher.name",
        }

    def test_label_matching_with_suffix(self, fig1c):
        builder = DataGuideBuilder().build(fig1c)
        assert [t.dotted for t in builder.type_table.match_label("publisher.name")] == [
            "data.author.book.publisher.name"
        ]
        assert builder.type_table.match_label("nosuch") == []

    def test_label_matching_case_insensitive(self, fig1c):
        builder = DataGuideBuilder().build(fig1c)
        assert builder.type_table.match_label("AUTHOR")
