"""Tests for cardinality ranges and the theorem comparators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.shape import Card, UNBOUNDED

bounded = st.integers(min_value=0, max_value=20)


def cards():
    return st.builds(
        lambda lo, extra, unbounded: Card(lo, UNBOUNDED if unbounded else lo + extra),
        bounded,
        bounded,
        st.booleans(),
    )


class TestConstruction:
    def test_validates_negative_minimum(self):
        with pytest.raises(ValueError):
            Card(-1, 2)

    def test_validates_empty_range(self):
        with pytest.raises(ValueError):
            Card(3, 2)

    def test_unbounded_allowed(self):
        assert Card(2, UNBOUNDED).hi is None

    def test_constants(self):
        assert Card.exactly_one() == Card(1, 1)
        assert Card.optional() == Card(0, 1)
        assert Card.leaf() == Card(0, 0)
        assert Card.any_number() == Card(0, UNBOUNDED)

    def test_str(self):
        assert str(Card(1, 2)) == "1..2"
        assert str(Card(0, UNBOUNDED)) == "0..*"


class TestAlgebra:
    def test_product(self):
        assert Card(1, 2) * Card(2, 3) == Card(2, 6)

    def test_product_with_unbounded(self):
        assert Card(1, UNBOUNDED) * Card(2, 3) == Card(2, UNBOUNDED)

    def test_product_zero_annihilates_minimum(self):
        assert (Card(0, 1) * Card(5, 5)).lo == 0

    def test_union(self):
        assert Card(1, 2).union(Card(0, 5)) == Card(0, 5)
        assert Card(1, 2).union(Card(3, UNBOUNDED)) == Card(1, UNBOUNDED)

    def test_observe_widens(self):
        assert Card(1, 1).observe(3) == Card(1, 3)
        assert Card(1, 3).observe(0) == Card(0, 3)
        assert Card(2, UNBOUNDED).observe(7) == Card(2, UNBOUNDED)

    @given(cards(), cards())
    def test_product_commutes(self, a, b):
        assert a * b == b * a

    @given(cards())
    def test_one_is_identity(self, a):
        assert a * Card.exactly_one() == a

    @given(cards(), cards())
    def test_union_covers_both(self, a, b):
        merged = a.union(b)
        assert merged.lo <= min(a.lo, b.lo)
        if merged.hi is not None:
            assert a.hi is not None and b.hi is not None
            assert merged.hi >= max(a.hi, b.hi)


class TestTheoremComparators:
    def test_min_becomes_nonzero(self):
        assert Card(0, 1).min_becomes_nonzero(Card(1, 1))
        assert not Card(1, 1).min_becomes_nonzero(Card(1, 1))
        assert not Card(0, 1).min_becomes_nonzero(Card(0, 5))

    def test_max_increases(self):
        assert Card(1, 1).max_increases(Card(1, 2))
        assert Card(1, 1).max_increases(Card(1, UNBOUNDED))
        assert not Card(1, 2).max_increases(Card(1, 2))
        assert not Card(0, UNBOUNDED).max_increases(Card(0, UNBOUNDED))
        assert not Card(0, UNBOUNDED).max_increases(Card(0, 3))
