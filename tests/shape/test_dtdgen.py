"""Tests for DTD export of shapes."""

import repro
from repro.shape.dtdgen import forest_to_dtd, occurrence, shape_to_dtd
from repro.shape import Card, UNBOUNDED, extract_shape
from repro.xmltree import parse_document


class TestOccurrence:
    def test_mapping(self):
        assert occurrence(Card(1, 1)) == ""
        assert occurrence(Card(0, 1)) == "?"
        assert occurrence(Card(1, UNBOUNDED)) == "+"
        assert occurrence(Card(0, UNBOUNDED)) == "*"
        assert occurrence(Card(2, 2)) == "+"
        assert occurrence(Card(0, 3)) == "*"


class TestForestToDtd:
    def test_fig1a_declarations(self, fig1a):
        dtd = forest_to_dtd(fig1a)
        assert "<!ELEMENT data (book+)>" in dtd
        assert "<!ELEMENT book (title, author, publisher)>" in dtd
        assert "<!ELEMENT title (#PCDATA)>" in dtd
        assert "<!ELEMENT name (#PCDATA)>" in dtd

    def test_optional_child(self, fig1a_optional_name):
        dtd = forest_to_dtd(fig1a_optional_name)
        assert "<!ELEMENT author (name?)>" in dtd

    def test_attributes_become_attlist(self):
        forest = parse_document('<r><item id="1"><price>3</price></item></r>')
        dtd = forest_to_dtd(forest)
        assert "<!ATTLIST item id CDATA #REQUIRED>" in dtd
        assert "<!ELEMENT item (price)>" in dtd
        # Attribute types must not also appear as elements.
        assert "<!ELEMENT id" not in dtd

    def test_optional_attribute_implied(self):
        forest = parse_document('<r><a x="1"/><a/></r>')
        dtd = forest_to_dtd(forest)
        assert "<!ATTLIST a x CDATA #IMPLIED>" in dtd

    def test_empty_leaf(self):
        forest = parse_document("<r><sep/><sep/></r>")
        dtd = forest_to_dtd(forest)
        assert "<!ELEMENT sep EMPTY>" in dtd

    def test_imprecision_noted(self, fig1c):
        dtd = forest_to_dtd(fig1c)
        assert "widened" in dtd  # author->book is 2..2


class TestGuardOutputDtd:
    def test_dtd_of_transformed_shape(self, fig1b):
        # Compile a guard, then describe the output schema it produces.
        result = repro.Interpreter(fig1b).compile("MORPH author [ name book [ title ] ]")
        dtd = shape_to_dtd(result.target_shape)
        assert "<!ELEMENT author (name, book)>" in dtd
        assert "<!ELEMENT book (title)>" in dtd

    def test_translated_names_used(self, fig1a):
        result = repro.Interpreter(fig1a).compile(
            "MORPH author [ name ] | TRANSLATE author -> writer"
        )
        dtd = shape_to_dtd(result.target_shape)
        assert "<!ELEMENT writer (name)>" in dtd
