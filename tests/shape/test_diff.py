"""Tests for shape diffs."""

import repro
from repro.shape import extract_shape
from repro.shape.diff import diff_shapes
from repro.xmltree import parse_document


def shapes(before_xml, after_xml):
    return (
        extract_shape(parse_document(before_xml)),
        extract_shape(parse_document(after_xml)),
    )


class TestClassification:
    def test_identical(self, fig1a):
        shape = extract_shape(fig1a)
        diff = diff_shapes(shape, shape)
        assert diff.identical
        assert "identical" in diff.pretty()

    def test_move_detected(self, fig1a, fig1b):
        # (a) -> (b): publisher moves from below book to above it.
        diff = diff_shapes(extract_shape(fig1a), extract_shape(fig1b))
        moved = {c.name for c in diff.moved}
        assert "publisher" in moved
        assert "book" in moved

    def test_added_and_removed(self):
        before, after = shapes(
            "<r><a><x/></a></r>",
            "<r><a><y/></a></r>",
        )
        diff = diff_shapes(before, after)
        assert [c.name for c in diff.removed] == ["x"]
        assert [c.name for c in diff.added] == ["y"]

    def test_cardinality_change(self):
        before, after = shapes(
            "<r><a><x/></a><a><x/></a></r>",
            "<r><a><x/><x/></a><a><x/></a></r>",
        )
        diff = diff_shapes(before, after)
        assert [c.name for c in diff.cardinality_changes] == ["x"]
        assert "1..1 -> 1..2" in diff.cardinality_changes[0].detail

    def test_unchanged_listed(self, fig1a, fig1b):
        diff = diff_shapes(extract_shape(fig1a), extract_shape(fig1b))
        assert "title" in diff.unchanged
        assert "data" in diff.unchanged


class TestGuardOutputDiff:
    def test_diff_source_vs_guard_output(self, fig1b):
        """What will this guard change about my shape?"""
        interpreter = repro.Interpreter(fig1b)
        compiled = interpreter.compile("MUTATE book [ publisher [ name ] ]")
        diff = diff_shapes(interpreter.index.shape, compiled.target_shape)
        moved = {c.name for c in diff.moved}
        assert "publisher" in moved
        assert not diff.added and not diff.removed

    def test_pretty_output(self, fig1a, fig1b):
        diff = diff_shapes(extract_shape(fig1a), extract_shape(fig1b))
        text = diff.pretty()
        assert "moved: publisher" in text
        assert "unchanged types:" in text


class TestMatchingByParent:
    """The (name, parent-name) matcher: same-named types under
    different parents must not be conflated."""

    def test_same_name_different_parents_tracked_separately(self):
        # 'name' lives under both author and publisher; dropping only
        # the publisher one must not disturb the author one.
        before, after = shapes(
            "<r><author><name/></author><publisher><name/></publisher></r>",
            "<r><author><name/></author><publisher><id/></publisher></r>",
        )
        diff = diff_shapes(before, after)
        removed = [c for c in diff.removed if c.name == "name"]
        assert len(removed) == 1
        assert "publisher" in removed[0].detail
        assert "name" not in diff.unchanged  # its placement partly changed

    def test_move_and_relabel_together(self):
        # x moves under b while y appears under a: one move, one
        # removal, one addition — not a spurious x->y "rename".
        before, after = shapes(
            "<r><a><x/></a><b/></r>",
            "<r><a><y/></a><b><x/></b></r>",
        )
        diff = diff_shapes(before, after)
        assert [c.name for c in diff.moved] == ["x"]
        assert "parent a -> b" in diff.moved[0].detail
        assert [c.name for c in diff.added] == ["y"]
        assert not diff.removed

    def test_ambiguous_pairing_noted(self):
        # Two same-keyed placements on each side: the pairing is
        # deterministic (root-path order) but flagged, not silent.
        before, after = shapes(
            "<r><a><x/><x/></a><b><a><x/></a></b></r>",
            "<r><a><x/></a><b><a><x/><x/></a></b></r>",
        )
        diff = diff_shapes(before, after)
        assert any("ambiguous match for 'x'" in note for note in diff.notes)
        assert any("note: ambiguous" in line for line in diff.pretty().splitlines())

    def test_unambiguous_shapes_carry_no_notes(self, fig1a, fig1b):
        diff = diff_shapes(extract_shape(fig1a), extract_shape(fig1b))
        assert diff.notes == []


class TestCardinalityDirections:
    def test_tightening(self):
        before, after = shapes(
            "<r><a><x/><x/></a><a><x/></a></r>",
            "<r><a><x/></a><a><x/></a></r>",
        )
        diff = diff_shapes(before, after)
        (change,) = diff.cardinality_changes
        assert change.detail == "1..2 -> 1..1"

    def test_loosening_to_optional(self):
        before, after = shapes(
            "<r><a><x/></a><a><x/></a></r>",
            "<r><a><x/></a><a/></r>",
        )
        diff = diff_shapes(before, after)
        (change,) = diff.cardinality_changes
        assert change.detail == "1..1 -> 0..1"

    def test_change_carries_paths(self):
        before, after = shapes(
            "<r><a><x/></a></r>",
            "<r><a><x/><x/></a></r>",
        )
        diff = diff_shapes(before, after)
        (change,) = diff.cardinality_changes
        assert change.before_paths == ("r.a.x",)
        assert change.after_paths == ("r.a.x",)


class TestDegenerateShapes:
    def test_empty_vs_empty(self):
        from repro.shape.shape import Shape

        diff = diff_shapes(Shape(), Shape())
        assert diff.identical
        assert diff.unchanged == []

    def test_empty_vs_populated(self):
        from repro.shape.shape import Shape

        after = extract_shape(parse_document("<r><a/></r>"))
        diff = diff_shapes(Shape(), after)
        assert {c.name for c in diff.added} == {"r", "a"}
        assert not diff.removed and not diff.moved

    def test_disjoint_shapes(self):
        before, after = shapes("<p><q/></p>", "<s><t/></s>")
        diff = diff_shapes(before, after)
        assert {c.name for c in diff.removed} == {"p", "q"}
        assert {c.name for c in diff.added} == {"s", "t"}
        assert diff.unchanged == []

    def test_recursive_types(self):
        # Self-nested elements: part within part.  Deepening the
        # recursion adds placements without destabilizing the rest.
        before, after = shapes(
            "<r><part><part/></part></r>",
            "<r><part><part><part/></part></part></r>",
        )
        diff = diff_shapes(before, after)
        assert [c.name for c in diff.added] == ["part"]
        assert "under part" in diff.added[0].detail
        assert not diff.removed

    def test_recursive_identical(self):
        before, after = shapes(
            "<r><part><part/></part></r>",
            "<r><part><part/></part></r>",
        )
        assert diff_shapes(before, after).identical
