"""Tests for shape diffs."""

import repro
from repro.shape import extract_shape
from repro.shape.diff import diff_shapes
from repro.xmltree import parse_document


def shapes(before_xml, after_xml):
    return (
        extract_shape(parse_document(before_xml)),
        extract_shape(parse_document(after_xml)),
    )


class TestClassification:
    def test_identical(self, fig1a):
        shape = extract_shape(fig1a)
        diff = diff_shapes(shape, shape)
        assert diff.identical
        assert "identical" in diff.pretty()

    def test_move_detected(self, fig1a, fig1b):
        # (a) -> (b): publisher moves from below book to above it.
        diff = diff_shapes(extract_shape(fig1a), extract_shape(fig1b))
        moved = {c.name for c in diff.moved}
        assert "publisher" in moved
        assert "book" in moved

    def test_added_and_removed(self):
        before, after = shapes(
            "<r><a><x/></a></r>",
            "<r><a><y/></a></r>",
        )
        diff = diff_shapes(before, after)
        assert [c.name for c in diff.removed] == ["x"]
        assert [c.name for c in diff.added] == ["y"]

    def test_cardinality_change(self):
        before, after = shapes(
            "<r><a><x/></a><a><x/></a></r>",
            "<r><a><x/><x/></a><a><x/></a></r>",
        )
        diff = diff_shapes(before, after)
        assert [c.name for c in diff.cardinality_changes] == ["x"]
        assert "1..1 -> 1..2" in diff.cardinality_changes[0].detail

    def test_unchanged_listed(self, fig1a, fig1b):
        diff = diff_shapes(extract_shape(fig1a), extract_shape(fig1b))
        assert "title" in diff.unchanged
        assert "data" in diff.unchanged


class TestGuardOutputDiff:
    def test_diff_source_vs_guard_output(self, fig1b):
        """What will this guard change about my shape?"""
        interpreter = repro.Interpreter(fig1b)
        compiled = interpreter.compile("MUTATE book [ publisher [ name ] ]")
        diff = diff_shapes(interpreter.index.shape, compiled.target_shape)
        moved = {c.name for c in diff.moved}
        assert "publisher" in moved
        assert not diff.added and not diff.removed

    def test_pretty_output(self, fig1a, fig1b):
        diff = diff_shapes(extract_shape(fig1a), extract_shape(fig1b))
        text = diff.pretty()
        assert "moved: publisher" in text
        assert "unchanged types:" in text
