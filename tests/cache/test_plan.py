"""Tests for the compiled-guard plan cache (repro.cache)."""

import json

import pytest

from repro import obs
from repro.cache import CompiledPlan, PlanCache, shape_fingerprint
from repro.engine.profile import profile_db_transform
from repro.errors import StorageError
from repro.storage import Database
from repro.workloads import generate_dblp

from tests.conftest import FIG1A, FIG1B

GUARD = "MORPH author [ name book [ title ] ]"


class TestShapeFingerprint:
    DESCRIPTOR = {
        "types": [[0, ["data"]], [1, ["data", "book"]]],
        "edges": [[0, 1, 1, None]],
        "counts": {"0": 1, "1": 3},
    }

    def test_deterministic(self):
        assert shape_fingerprint(self.DESCRIPTOR) == shape_fingerprint(self.DESCRIPTOR)

    def test_key_order_independent(self):
        reordered = {
            "counts": {"1": 3, "0": 1},
            "edges": self.DESCRIPTOR["edges"],
            "types": self.DESCRIPTOR["types"],
        }
        assert shape_fingerprint(reordered) == shape_fingerprint(self.DESCRIPTOR)

    def test_survives_json_round_trip(self):
        # The stored shape is decoded from JSON chunks; the fingerprint
        # computed at shred time must match the one recomputed on load.
        round_tripped = json.loads(json.dumps(self.DESCRIPTOR))
        assert shape_fingerprint(round_tripped) == shape_fingerprint(self.DESCRIPTOR)

    def test_different_shapes_differ(self):
        other = dict(self.DESCRIPTOR, counts={"0": 1, "1": 4})
        assert shape_fingerprint(other) != shape_fingerprint(self.DESCRIPTOR)


def _plan(guard="G", fingerprint="f" * 16):
    return CompiledPlan(
        guard=guard,
        fingerprint=fingerprint,
        target_shape=None,
        loss=None,
        evaluation=None,
        compile_seconds=0.0,
    )


class TestPlanCacheLru:
    def test_hit_and_miss_counting(self):
        cache = PlanCache(capacity=4)
        assert cache.get("G", "f") is None
        cache.put(_plan("G", "f"))
        assert cache.get("G", "f") is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_order(self):
        cache = PlanCache(capacity=2)
        cache.put(_plan("a"))
        cache.put(_plan("b"))
        assert cache.get("a", "f" * 16) is not None  # refresh "a"
        cache.put(_plan("c"))  # evicts "b", the LRU entry
        assert cache.get("b", "f" * 16) is None
        assert cache.get("a", "f" * 16) is not None
        assert cache.get("c", "f" * 16) is not None
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = PlanCache(capacity=0)
        cache.put(_plan("G"))
        assert len(cache) == 0
        assert cache.get("G", "f" * 16) is None

    def test_invalidate_by_fingerprint(self):
        cache = PlanCache(capacity=8)
        cache.put(_plan("a", "doc1"))
        cache.put(_plan("b", "doc1"))
        cache.put(_plan("a", "doc2"))
        assert cache.invalidate("doc1") == 2
        assert cache.get("a", "doc1") is None
        assert cache.get("a", "doc2") is not None

    def test_stats_shape(self):
        stats = PlanCache(capacity=3).stats()
        assert set(stats) == {
            "entries", "capacity", "hits", "misses", "evictions", "invalidations",
            "contended",
        }


@pytest.fixture
def db(tmp_path):
    with Database(str(tmp_path / "cache.db"), durable=False) as database:
        database.store_document("a", FIG1A)
        yield database


class TestDatabasePlanCache:
    def test_repeat_transform_hits(self, db):
        first = db.transform("a", GUARD)
        assert db.plan_cache.stats()["misses"] == 1
        second = db.transform("a", GUARD)
        assert db.plan_cache.stats()["hits"] == 1
        assert second.forest.canonical() == first.forest.canonical()

    def test_cached_plan_skips_simulated_compile_cpu(self, db):
        db.transform("a", GUARD)
        cold_cpu = db.stats.cpu_seconds
        db.compile("a", GUARD)
        # The all-pairs loss-analysis CPU charge is not paid again.
        assert db.stats.cpu_seconds == cold_cpu

    def test_compile_and_stream_share_plans(self, db):
        import io

        db.compile("a", GUARD)
        db.stream_transform("a", GUARD, io.StringIO())
        db.transform("a", GUARD)
        stats = db.plan_cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2

    def test_invalidate_on_drop(self, db):
        db.transform("a", GUARD)
        db.drop_document("a")
        assert db.plan_cache.stats()["invalidations"] == 1
        assert len(db.plan_cache) == 0

    def test_invalidate_on_restore(self, db):
        db.transform("a", GUARD)
        db.drop_document("a")
        db.store_document("a", FIG1A)  # same shape, fresh epoch
        db.transform("a", GUARD)
        stats = db.plan_cache.stats()
        assert stats["hits"] == 0  # recompiled, never served stale
        assert stats["misses"] == 2

    def test_different_document_shape_misses(self, db):
        db.transform("a", GUARD)
        db.store_document("b", FIG1B)
        db.transform("b", GUARD)
        assert db.plan_cache.stats()["misses"] == 2
        assert len(db.plan_cache) == 2

    def test_cache_plans_zero_knob(self, tmp_path):
        with Database(str(tmp_path / "off.db"), durable=False, cache_plans=0) as db:
            db.store_document("a", FIG1A)
            db.transform("a", GUARD)
            db.transform("a", GUARD)
            assert db.plan_cache.stats()["hits"] == 0
            assert len(db.plan_cache) == 0

    def test_drop_cache_clears_plans(self, db):
        db.transform("a", GUARD)
        db.drop_cache()
        assert len(db.plan_cache) == 0

    def test_duplicate_store_still_rejected(self, db):
        # The duplicate check now probes the catalog key directly.
        with pytest.raises(StorageError):
            db.store_document("a", FIG1A)

    def test_rendered_output_stable_across_hits(self, db):
        results = [db.transform("a", GUARD) for _ in range(3)]
        canon = results[0].forest.canonical()
        assert all(r.forest.canonical() == canon for r in results[1:])


class TestColdVersusWarmMetrics:
    def test_warm_run_is_cheaper_and_visible_in_explain(self, tmp_path):
        with Database(str(tmp_path / "m.db"), durable=False) as db:
            db.store_document("dblp", generate_dblp(60))
            guard = "CAST MORPH author [ title [ year ] ]"

            db.drop_cache()
            cold = profile_db_transform(db, "dblp", guard)
            warm = profile_db_transform(db, "dblp", guard)

            # Counters flow through the tracer: the cold run records the
            # miss, the warm run records the hit.
            assert cold.tracer.metrics.counters["plan_cache.misses"] == 1
            assert "plan_cache.misses" not in warm.tracer.metrics.counters
            assert warm.tracer.metrics.counters["plan_cache.hits"] == 1

            # The warm run pays no compile spans and less simulated cost.
            assert warm.span_duration("lang.parse") is None
            assert cold.span_duration("lang.parse") is not None
            assert (
                warm.storage["simulated_seconds"] < cold.storage["simulated_seconds"]
            )

            # EXPLAIN ANALYZE prints the plan-cache line and counters.
            pretty = warm.pretty()
            assert "plan cache:" in pretty
            assert "hits=1" in pretty
            assert "plan_cache.hits" in pretty
