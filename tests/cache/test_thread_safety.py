"""Cache and counter races: invariants that must hold under threads.

Three families:

* the plan cache — single-flight compilation (no duplicate compiles
  beyond one leader per key), no lost invalidations, and the LRU size
  invariant, all hammered by thread pools;
* the closest-join memos — concurrent ``closest_pair_map`` calls on one
  index return the *same* memo object (a second compute would silently
  produce different node identities for the id-keyed maps);
* the counters — ``SystemStats.event`` and ``MetricsRegistry.inc`` are
  increments, so N threads x M increments must total exactly N*M.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.cache.plan import CompiledPlan, PlanCache
from repro.obs.metrics import MetricsRegistry
from repro.storage.stats import SystemStats

THREADS = 8


def _plan(guard: str, fingerprint: str) -> CompiledPlan:
    return CompiledPlan(
        guard=guard,
        fingerprint=fingerprint,
        target_shape=None,
        loss=None,
        evaluation=None,
        compile_seconds=0.0,
    )


def _hammer(workers: int, task) -> list:
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return [f.result() for f in [pool.submit(task, i) for i in range(workers)]]


class TestSingleFlight:
    def test_one_compile_per_key(self):
        cache = PlanCache(capacity=64)
        compiles = []
        compile_lock = threading.Lock()
        started = threading.Barrier(THREADS)

        def compile_plan():
            with compile_lock:
                compiles.append(threading.current_thread().name)
            time.sleep(0.05)  # hold the door open so every waiter piles up
            return _plan("g", "doc")

        def task(i):
            started.wait()  # all threads miss at once
            return cache.get_or_compile("g", "doc", compile_plan)

        results = _hammer(THREADS, task)
        assert len(compiles) == 1, "single-flight admitted a duplicate compile"
        assert all(r is results[0] for r in results), "waiters got a different plan"
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["contended"] == THREADS - 1
        assert stats["hits"] >= THREADS - 1  # waiters re-read the cache

    def test_distinct_keys_compile_concurrently(self):
        cache = PlanCache(capacity=64)
        compiles = []
        lock = threading.Lock()

        def task(i):
            def compile_plan():
                with lock:
                    compiles.append(i)
                return _plan(f"g{i}", "doc")

            return cache.get_or_compile(f"g{i}", "doc", compile_plan)

        _hammer(THREADS, task)
        assert sorted(compiles) == list(range(THREADS))  # one each, none lost

    def test_leader_failure_promotes_a_waiter(self):
        cache = PlanCache(capacity=64)
        attempts = []
        lock = threading.Lock()
        started = threading.Barrier(2)

        def compile_plan():
            with lock:
                attempts.append(1)
                first = len(attempts) == 1
            if first:
                time.sleep(0.02)
                raise RuntimeError("leader dies")
            return _plan("g", "doc")

        def task(i):
            started.wait()
            try:
                return cache.get_or_compile("g", "doc", compile_plan)
            except RuntimeError:
                return None

        results = _hammer(2, task)
        # One thread saw the injected failure; the other took over and
        # compiled successfully rather than hanging or reusing nothing.
        assert sum(1 for r in results if r is None) == 1
        assert sum(1 for r in results if r is not None) == 1
        assert len(attempts) == 2

    def test_invalidation_during_compile_is_not_lost(self):
        """A plan put after an invalidation is a *fresh* compile, and an
        invalidation always empties the fingerprint's entries at the
        moment it runs — concurrency may re-add, never resurrect."""
        cache = PlanCache(capacity=64)
        stop = threading.Event()

        def churn(i):
            count = 0
            while not stop.is_set():
                cache.get_or_compile("g", "doc", lambda: _plan("g", "doc"))
                count += 1
            return count

        def invalidate(i):
            dropped = 0
            for _ in range(200):
                dropped += cache.invalidate("doc")
            stop.set()
            return dropped

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            churners = [pool.submit(churn, i) for i in range(THREADS - 1)]
            dropper = pool.submit(invalidate, 0)
            dropped = dropper.result()
            for f in churners:
                f.result()
        assert cache.stats()["invalidations"] == dropped
        # After a final quiescent invalidation nothing survives.
        cache.invalidate("doc")
        assert ("g", "doc") not in cache

    def test_lru_capacity_invariant_under_threads(self):
        cache = PlanCache(capacity=8)

        def task(i):
            for j in range(50):
                key = f"g{i}-{j}"
                cache.get_or_compile(key, "doc", lambda k=key: _plan(k, "doc"))
                assert len(cache) <= 8
            return True

        assert all(_hammer(THREADS, task))
        stats = cache.stats()
        assert stats["entries"] <= 8
        assert stats["evictions"] >= THREADS * 50 - 8


class TestJoinMemoSingleFlight:
    def test_concurrent_closest_pair_map_returns_one_memo(self):
        from repro.closeness import DocumentIndex
        from repro.xmltree import parse_forest

        forest = parse_forest(
            "<r>" + "".join(f"<a><b>x{i}</b></a>" for i in range(20)) + "</r>"
        )
        index = DocumentIndex(forest)
        by_dotted = {t.dotted: t for t in index.types()}
        a = by_dotted["r.a"]
        b = by_dotted["r.a.b"]
        maps = _hammer(THREADS, lambda i: index.closest_pair_map(a, b))
        assert all(m is maps[0] for m in maps), (
            "closest_pair_map computed more than one memo for the same pair"
        )


class TestCounterAtomicity:
    def test_system_stats_event_is_exact(self):
        stats = SystemStats()
        per_thread = 5000

        def task(i):
            for _ in range(per_thread):
                stats.event("serve.test")
            return True

        _hammer(THREADS, task)
        assert stats.events["serve.test"] == THREADS * per_thread

    def test_metrics_registry_inc_is_exact(self):
        registry = MetricsRegistry()
        per_thread = 5000

        def task(i):
            for _ in range(per_thread):
                registry.inc("c")
                registry.observe("h", 1.0)
            return True

        _hammer(THREADS, task)
        assert registry.counters["c"] == THREADS * per_thread
        assert registry.histograms["h"].count == THREADS * per_thread

    def test_block_accounting_is_exact(self):
        stats = SystemStats()
        per_thread = 2000

        def task(i):
            for _ in range(per_thread):
                stats.block_read()
                stats.block_write()
            return True

        _hammer(THREADS, task)
        assert stats.cumulative_blocks == THREADS * per_thread * 2
