"""Unit and property tests for Dewey identifiers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xmltree import Dewey

parts_lists = st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6)


class TestConstruction:
    def test_root(self):
        assert Dewey.root().parts == (1,)
        assert Dewey.root(3).parts == (3,)

    def test_parse_roundtrip(self):
        ident = Dewey.parse("1.1.3")
        assert str(ident) == "1.1.3"
        assert ident.parts == (1, 1, 3)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Dewey.parse("1.x.3")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Dewey(())

    def test_nonpositive_component_rejected(self):
        with pytest.raises(ValueError):
            Dewey((1, 0))

    def test_child(self):
        assert Dewey.root().child(2).parts == (1, 2)


class TestStructure:
    def test_level(self):
        assert Dewey.root().level == 0
        assert Dewey.parse("1.1.2.1").level == 3

    def test_parent(self):
        assert Dewey.parse("1.2.3").parent == Dewey.parse("1.2")
        assert Dewey.root().parent is None

    def test_ancestor_at_level(self):
        ident = Dewey.parse("1.2.3.4")
        assert ident.ancestor_at_level(0) == Dewey.root()
        assert ident.ancestor_at_level(2) == Dewey.parse("1.2.3")
        with pytest.raises(ValueError):
            ident.ancestor_at_level(9)

    def test_ancestry(self):
        root = Dewey.root()
        deep = Dewey.parse("1.2.3")
        assert root.is_ancestor_of(deep)
        assert not deep.is_ancestor_of(root)
        assert not deep.is_ancestor_of(deep)
        assert deep.is_ancestor_or_self_of(deep)


class TestDistance:
    """The Section VII worked example, verbatim from the paper."""

    def test_paper_example_close_pair(self):
        # publisher 1.1.3 vs title 1.1.1: shared prefix 1.1 -> distance 2.
        publisher = Dewey.parse("1.1.3")
        first_title = Dewey.parse("1.1.1")
        assert publisher.distance(first_title) == 2

    def test_paper_example_far_pair(self):
        # publisher 1.1.3 vs title 1.2.1: shared prefix 1 -> distance 4.
        publisher = Dewey.parse("1.1.3")
        second_title = Dewey.parse("1.2.1")
        assert publisher.distance(second_title) == 4

    def test_lca(self):
        assert Dewey.parse("1.1.3").lca(Dewey.parse("1.1.1")) == Dewey.parse("1.1")
        assert Dewey.parse("1.1").lca(Dewey.parse("2.1")) is None

    def test_distance_across_roots_is_none(self):
        assert Dewey.parse("1.1").distance(Dewey.parse("2.1")) is None

    def test_ancestor_distance(self):
        assert Dewey.parse("1.1.1").distance(Dewey.parse("1")) == 2
        assert Dewey.parse("1").distance(Dewey.parse("1.1.1")) == 2

    def test_self_distance(self):
        assert Dewey.parse("1.2").distance(Dewey.parse("1.2")) == 0


class TestOrdering:
    def test_document_order(self):
        order = [Dewey.parse(s) for s in ["1", "1.1", "1.1.1", "1.1.2", "1.2", "2"]]
        assert sorted(order) == order

    def test_hash_and_eq(self):
        assert Dewey.parse("1.2") == Dewey.parse("1.2")
        assert hash(Dewey.parse("1.2")) == hash(Dewey.parse("1.2"))
        assert Dewey.parse("1.2") != Dewey.parse("1.2.1")


class TestProperties:
    @given(parts_lists, parts_lists)
    def test_distance_symmetric(self, first, second):
        a, b = Dewey(tuple(first)), Dewey(tuple(second))
        assert a.distance(b) == b.distance(a)

    @given(parts_lists)
    def test_distance_to_self_is_zero(self, parts):
        ident = Dewey(tuple(parts))
        assert ident.distance(ident) == 0

    @given(parts_lists, parts_lists)
    def test_common_prefix_commutes(self, first, second):
        a, b = Dewey(tuple(first)), Dewey(tuple(second))
        assert a.common_prefix_length(b) == b.common_prefix_length(a)

    @given(parts_lists)
    def test_parent_distance_is_one(self, parts):
        ident = Dewey(tuple(parts) + (1,))
        assert ident.distance(ident.parent) == 1

    @given(parts_lists, parts_lists)
    def test_distance_via_lca_levels(self, first, second):
        a, b = Dewey(tuple(first)), Dewey(tuple(second))
        meet = a.lca(b)
        if meet is None:
            assert a.distance(b) is None
        else:
            expected = (a.level - meet.level) + (b.level - meet.level)
            assert a.distance(b) == expected

    @given(parts_lists, parts_lists)
    def test_order_matches_tuple_order(self, first, second):
        a, b = Dewey(tuple(first)), Dewey(tuple(second))
        assert (a < b) == (tuple(first) < tuple(second))
