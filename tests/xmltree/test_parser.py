"""Tests for the XML parser."""

import pytest
from hypothesis import given

from repro.errors import XmlParseError
from repro.xmltree import parse_document, parse_forest, serialize

from tests.strategies import xml_forests


class TestBasics:
    def test_single_element(self):
        forest = parse_document("<a/>")
        assert forest.roots[0].name == "a"
        assert forest.roots[0].children == []

    def test_nested_elements(self, fig1a):
        book = fig1a.roots[0].children[0]
        assert book.name == "book"
        assert [child.name for child in book.children] == ["title", "author", "publisher"]

    def test_text_content(self):
        forest = parse_document("<a>hello</a>")
        assert forest.roots[0].text == "hello"

    def test_mixed_text_is_concatenated(self):
        forest = parse_document("<a>one<b/>two</a>")
        assert forest.roots[0].text == "onetwo"

    def test_attributes_become_vertices(self):
        forest = parse_document('<a x="1" y="two words"/>')
        attrs = forest.roots[0].attributes()
        assert [(a.name, a.text) for a in attrs] == [("x", "1"), ("y", "two words")]
        assert attrs[0].dewey is not None and attrs[0].dewey.level == 1

    def test_single_quoted_attribute(self):
        forest = parse_document("<a x='1'/>")
        assert forest.roots[0].attribute("x").text == "1"

    def test_forest_of_roots(self):
        forest = parse_forest("<a/><b/>")
        assert [root.name for root in forest.roots] == ["a", "b"]

    def test_document_requires_single_root(self):
        with pytest.raises(XmlParseError):
            parse_document("<a/><b/>")


class TestEntitiesAndSections:
    def test_predefined_entities(self):
        forest = parse_document("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>")
        assert forest.roots[0].text == "<x> & \"y\" 'z'"

    def test_numeric_entities(self):
        forest = parse_document("<a>&#65;&#x42;</a>")
        assert forest.roots[0].text == "AB"

    def test_entity_in_attribute(self):
        forest = parse_document('<a x="a&amp;b"/>')
        assert forest.roots[0].attribute("x").text == "a&b"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            parse_document("<a>&nope;</a>")

    def test_cdata(self):
        forest = parse_document("<a><![CDATA[<not> & parsed]]></a>")
        assert forest.roots[0].text == "<not> & parsed"

    def test_comments_skipped(self):
        forest = parse_document("<!-- head --><a><!-- inner --><b/></a>")
        assert [child.name for child in forest.roots[0].children] == ["b"]

    def test_declaration_and_doctype_skipped(self):
        text = '<?xml version="1.0"?><!DOCTYPE data [<!ELEMENT a ANY>]><a/>'
        assert parse_document(text).roots[0].name == "a"

    def test_processing_instruction_skipped(self):
        forest = parse_document("<a><?target data?><b/></a>")
        assert [child.name for child in forest.roots[0].children] == ["b"]


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",  # unterminated
            "<a></b>",  # mismatched tags
            "<a x=1/>",  # unquoted attribute
            "<a><b></a></b>",  # crossed nesting
            "just text",  # no element
            "<a x='1/>",  # unterminated attribute value
            "<1bad/>",  # invalid name start
            "<!-- unterminated <a/>",
        ],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(XmlParseError):
            parse_forest(text)

    def test_error_carries_location(self):
        with pytest.raises(XmlParseError) as info:
            parse_document("<a>\n  <b></c>\n</a>")
        assert info.value.line == 2


class TestRoundtrip:
    def test_fig1_roundtrip(self, fig1a):
        again = parse_document(serialize(fig1a))
        assert again.canonical() == fig1a.canonical()

    @given(xml_forests())
    def test_serialize_parse_roundtrip(self, forest):
        again = parse_forest(serialize(forest))
        assert again.canonical() == forest.canonical()

    @given(xml_forests())
    def test_indented_roundtrip(self, forest):
        again = parse_forest(serialize(forest, indent=2))
        # Indentation adds whitespace-only text; canonical() strips it.
        assert again.canonical() == forest.canonical()
