"""Tests for XML serialization."""

from io import StringIO

from repro.xmltree import element, attribute, serialize, parse_document
from repro.xmltree.node import XmlForest
from repro.xmltree.serializer import escape_attr, escape_text, write


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attr_escapes_quotes(self):
        assert escape_attr('say "hi" & <bye>') == "say &quot;hi&quot; &amp; &lt;bye&gt;"


class TestShapes:
    def test_self_closing_empty(self):
        assert serialize(element("a")) == "<a/>"

    def test_text_only(self):
        assert serialize(element("a", text="hi")) == "<a>hi</a>"

    def test_attributes_in_start_tag(self):
        node = element("a", attribute("x", "1"), attribute("y", "2"))
        assert serialize(node) == '<a x="1" y="2"/>'

    def test_attributes_with_children(self):
        node = element("a", attribute("x", "1"), element("b"))
        assert serialize(node) == '<a x="1"><b/></a>'

    def test_text_before_children(self):
        node = element("a", element("b"), text="hi")
        assert serialize(node) == "<a>hi<b/></a>"

    def test_forest_roots_separated(self):
        forest = XmlForest([element("a"), element("b")])
        assert serialize(forest) == "<a/>\n<b/>"


class TestIndent:
    def test_indented_output(self):
        node = element("a", element("b", element("c")))
        expected = "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"
        assert serialize(node, indent=2) == expected

    def test_indent_strips_text_padding(self):
        text = "<a>\n  <b>hello</b>\n</a>"
        forest = parse_document(text)
        assert "hello" in serialize(forest, indent=2)


class TestWriteReturnsLength:
    def test_written_count_matches(self):
        node = element("a", attribute("x", "1"), element("b", text="hi"))
        out = StringIO()
        count = write(node, out)
        assert count == len(out.getvalue())

    def test_written_count_matches_indented(self):
        node = element("a", element("b", element("c", text="deep")))
        out = StringIO()
        count = write(node, out, indent=2)
        assert count == len(out.getvalue())
