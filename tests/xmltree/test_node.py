"""Tests for the XML node model and forest numbering."""

from hypothesis import given

from repro.xmltree import Dewey, XmlForest, element, attribute, text_of
from repro.xmltree.node import NodeKind

from tests.strategies import xml_forests


def small_tree():
    return element(
        "book",
        attribute("id", "b1"),
        element("title", text="X"),
        element("author", element("name", text="A")),
    )


class TestBuilders:
    def test_element_builder(self):
        node = small_tree()
        assert node.name == "book"
        assert node.is_element
        assert [child.name for child in node.children] == ["id", "title", "author"]

    def test_attribute_builder(self):
        attr = attribute("id", "b1")
        assert attr.is_attribute
        assert attr.kind is NodeKind.ATTRIBUTE
        assert text_of(attr) == "b1"

    def test_parent_links(self):
        node = small_tree()
        for child in node.children:
            assert child.parent is node

    def test_attribute_accessors(self):
        node = small_tree()
        assert node.attribute("id").text == "b1"
        assert node.attribute("nope") is None
        assert [a.name for a in node.attributes()] == ["id"]
        assert [e.name for e in node.element_children()] == ["title", "author"]


class TestTypePath:
    def test_paths_from_root(self):
        node = small_tree()
        name = node.children[2].children[0]
        assert name.type_path() == ("book", "author", "name")

    def test_attribute_path(self):
        node = small_tree()
        assert node.children[0].type_path() == ("book", "id")


class TestForest:
    def test_renumber_assigns_sibling_order(self):
        forest = XmlForest([small_tree()]).renumber()
        book = forest.roots[0]
        assert book.dewey == Dewey.parse("1")
        assert book.children[0].dewey == Dewey.parse("1.1")
        assert book.children[2].children[0].dewey == Dewey.parse("1.3.1")

    def test_multiple_roots_numbered_apart(self):
        forest = XmlForest([small_tree(), small_tree()]).renumber()
        assert forest.roots[1].dewey == Dewey.parse("2")
        assert forest.roots[1].children[0].dewey == Dewey.parse("2.1")

    def test_iter_nodes_is_document_order(self):
        forest = XmlForest([small_tree()]).renumber()
        ids = [node.dewey for node in forest.iter_nodes()]
        assert ids == sorted(ids)

    def test_node_by_dewey(self):
        forest = XmlForest([small_tree()]).renumber()
        found = forest.node_by_dewey(Dewey.parse("1.3.1"))
        assert found is not None and found.name == "name"
        assert forest.node_by_dewey(Dewey.parse("1.9")) is None
        assert forest.node_by_dewey(Dewey.parse("7")) is None

    def test_find_named(self):
        forest = XmlForest([small_tree()]).renumber()
        assert [n.name for n in forest.find_named("title")] == ["title"]

    def test_node_count(self):
        forest = XmlForest([small_tree()]).renumber()
        # book + @id + title + author + name
        assert forest.node_count() == 5


class TestCopyAndCanonical:
    def test_copy_subtree_is_deep(self):
        node = small_tree()
        clone = node.copy_subtree()
        assert clone is not node
        assert clone.canonical() == node.canonical()
        clone.children[1].text = "changed"
        assert clone.canonical() != node.canonical()

    def test_canonical_ignores_sibling_order(self):
        first = element("r", element("a"), element("b"))
        second = element("r", element("b"), element("a"))
        assert first.canonical() == second.canonical()

    def test_canonical_distinguishes_values(self):
        assert element("a", text="1").canonical() != element("a", text="2").canonical()


class TestProperties:
    @given(xml_forests())
    def test_renumber_is_document_order(self, forest):
        ids = [node.dewey for node in forest.iter_nodes()]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    @given(xml_forests())
    def test_node_by_dewey_roundtrip(self, forest):
        for node in forest.iter_nodes():
            assert forest.node_by_dewey(node.dewey) is node

    @given(xml_forests())
    def test_type_path_prefix_of_children(self, forest):
        for node in forest.iter_nodes():
            for child in node.children:
                assert child.type_path()[:-1] == node.type_path()
