"""Baseline comparison for bench reports (xmorph bench --compare)."""

import json

from repro.bench.compare import compare_files, compare_reports
from repro.bench.pipeline import sample_percentile


def _report(guards: dict[str, dict]) -> dict:
    return {
        "schema": "xmorph-bench-pipeline/v1",
        "guards": [
            {"guard": guard, **metrics} for guard, metrics in guards.items()
        ],
    }


def _entry(warm_mean: float, warm_p95: float, cold: float = 1.0) -> dict:
    return {
        "cold": {"wall_seconds": cold},
        "warm": {"wall_seconds_mean": warm_mean, "wall_seconds_p95": warm_p95},
    }


class TestSamplePercentile:
    def test_empty(self):
        assert sample_percentile([], 0.95) == 0.0

    def test_single_sample(self):
        assert sample_percentile([0.3], 0.95) == 0.3

    def test_interpolates_between_order_statistics(self):
        assert sample_percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5
        assert sample_percentile([4.0, 1.0, 3.0, 2.0], 1.0) == 4.0
        assert sample_percentile([4.0, 1.0, 3.0, 2.0], 0.0) == 1.0


class TestCompareReports:
    def test_no_movement_is_ok(self):
        base = _report({"G": _entry(0.1, 0.12)})
        assert compare_reports(base, base).ok

    def test_warm_mean_regression_flags(self):
        base = _report({"G": _entry(0.1, 0.12)})
        current = _report({"G": _entry(0.2, 0.12)})
        report = compare_reports(base, current, threshold=0.25)
        assert not report.ok
        assert report.regressions[0].regressed_metrics == ["warm_mean"]
        assert "REGRESSION" in report.pretty()
        assert "FAIL" in report.pretty()

    def test_warm_p95_regression_flags(self):
        base = _report({"G": _entry(0.1, 0.1)})
        current = _report({"G": _entry(0.1, 0.2)})
        assert not compare_reports(base, current, threshold=0.25).ok

    def test_cold_is_context_never_gated(self):
        base = _report({"G": _entry(0.1, 0.12, cold=0.5)})
        current = _report({"G": _entry(0.1, 0.12, cold=5.0)})
        report = compare_reports(base, current, threshold=0.25)
        assert report.ok
        assert "cold" in report.deltas[0].metric_deltas

    def test_improvement_is_never_a_regression(self):
        base = _report({"G": _entry(0.2, 0.25)})
        current = _report({"G": _entry(0.05, 0.06)})
        assert compare_reports(base, current, threshold=0.25).ok

    def test_within_threshold_is_ok(self):
        base = _report({"G": _entry(0.100, 0.100)})
        current = _report({"G": _entry(0.120, 0.120)})  # +20% < 25%
        assert compare_reports(base, current, threshold=0.25).ok

    def test_unmatched_guards_reported_not_flagged(self):
        base = _report({"OLD": _entry(0.1, 0.1)})
        current = _report({"NEW": _entry(9.9, 9.9)})
        report = compare_reports(base, current)
        assert report.ok
        assert report.only_in_baseline == ["OLD"]
        assert report.only_in_current == ["NEW"]

    def test_old_baseline_without_p95_backfills_from_samples(self):
        base = _report(
            {
                "G": {
                    "cold": {"wall_seconds": 1.0},
                    "warm": {
                        "wall_seconds_mean": 0.1,
                        "wall_seconds": [0.08, 0.1, 0.12],
                    },
                }
            }
        )
        current = _report({"G": _entry(0.1, 0.5)})
        report = compare_reports(base, current, threshold=0.25)
        assert "warm_p95" in report.deltas[0].metric_deltas
        assert not report.ok

    def test_as_dict_round_trips_through_json(self):
        base = _report({"G": _entry(0.1, 0.12)})
        current = _report({"G": _entry(0.3, 0.12)})
        payload = json.loads(
            json.dumps(compare_reports(base, current).as_dict())
        )
        assert payload["ok"] is False
        assert payload["workloads"][0]["metrics"]["warm_mean"]["regressed"]


class TestCompareFiles:
    def test_loads_baseline_from_disk(self, tmp_path):
        baseline = tmp_path / "BENCH_pipeline.json"
        baseline.write_text(json.dumps(_report({"G": _entry(0.1, 0.12)})))
        current = _report({"G": _entry(0.1, 0.12)})
        assert compare_files(str(baseline), current).ok
