"""Tests for the measured-operation harness."""

import pytest

from repro.baseline import ExistStore
from repro.bench import (
    Measurement,
    measured_compile,
    measured_dump,
    measured_query,
    measured_transform,
)
from repro.storage import Database

from tests.conftest import FIG1A


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "h.db"))
    database.store_document("a", FIG1A)
    yield database
    database.close()


@pytest.fixture
def exist(tmp_path):
    store = ExistStore(str(tmp_path / "e.db"))
    store.store_document("a", FIG1A)
    yield store
    store.close()


class TestMeasurement:
    def test_throughput(self):
        m = Measurement(wall_seconds=1.0, simulated_seconds=0.5, blocks=10)
        assert m.throughput(100) == 200.0

    def test_zero_simulated_time(self):
        m = Measurement(wall_seconds=1.0, simulated_seconds=0.0, blocks=0)
        assert m.throughput(5) == float("inf")


class TestMeasuredOperations:
    def test_transform_captures_deltas(self, db):
        m = measured_transform(db, "a", "MORPH author [ name ]")
        assert m.wall_seconds > 0
        assert m.simulated_seconds > 0
        assert m.result.forest.node_count() == 4

    def test_cold_resets_cache(self, db):
        first = measured_transform(db, "a", "MORPH author [ name ]", cold=True)
        warm = measured_transform(db, "a", "MORPH author [ name ]", cold=False)
        assert warm.blocks <= first.blocks

    def test_compile_measures_no_sequence_io(self, db):
        db.drop_cache()
        m = measured_compile(db, "a", "MORPH author [ name ]")
        transform = measured_transform(db, "a", "MORPH author [ name ]")
        assert m.simulated_seconds <= transform.simulated_seconds

    def test_dump(self, exist):
        m = measured_dump(exist, "a")
        assert "<data>" in m.result
        assert m.blocks >= 1

    def test_query(self, exist):
        m = measured_query(exist, "a", "count(//book)")
        assert m.result == [2.0]
        assert m.simulated_seconds > 0


class TestSessionTrace:
    def test_measurements_recorded_as_phases(self, db):
        from repro.bench.harness import session_tracer
        from repro.obs import from_json_lines, to_json_lines

        before = len(session_tracer().roots)
        measurement = measured_transform(db, "a", "MORPH author [ name ]")
        phases = session_tracer().roots[before:]
        assert [span.name for span in phases] == ["transform:a"]
        phase = phases[0]
        assert phase.attrs["guard"] == "MORPH author [ name ]"
        assert phase.attrs["simulated_seconds"] == measurement.simulated_seconds
        assert phase.attrs["blocks"] == measurement.blocks
        assert phase.duration >= 0.0
        # The session trace serializes to the JSONL the benchmarks persist.
        trace = from_json_lines(to_json_lines(session_tracer()))
        assert "transform:a" in trace.span_names()

    def test_measured_code_runs_with_tracing_disabled(self, db):
        """The session tracer records phases without becoming current —
        production code under measurement stays untraced."""
        from repro import obs

        measured_transform(db, "a", "MORPH author [ name ]")
        assert obs.get_tracer().enabled is False
