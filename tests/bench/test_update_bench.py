"""The update-vs-reshred benchmark: shape of the report and hygiene.

The timing itself is machine-dependent; what the tests pin is that the
bench measures without corrupting — it appends and reverts, then drops
and re-stores, so the document it leaves behind must be exactly the one
it was handed — and that the report carries the fields the CI gate
(``xmorph bench --min-update-speedup``) reads.
"""

import pytest

from repro.bench.pipeline import update_vs_reshred_bench
from repro.storage import Database
from repro.workloads.dblp import generate_dblp


@pytest.fixture
def stored(tmp_path):
    forest = generate_dblp(20)
    db = Database(str(tmp_path / "b.db"), durable=False)
    db.store_document("dblp", forest)
    yield db, forest
    db.close()


def test_report_fields_and_state_restored(stored):
    db, forest = stored
    before = db.describe("dblp")
    report = update_vs_reshred_bench(db, "dblp", forest, repeat=2)

    assert report["repeat"] == 2
    assert report["subtree_nodes"] > 0
    for side in ("incremental", "reshred"):
        assert report[f"{side}_mean_seconds"] > 0
        assert 0 < report[f"{side}_best_seconds"] <= report[f"{side}_mean_seconds"]
    assert report["speedup_mean"] > 0
    assert report["speedup_best"] > 0

    # Every append was reverted and the final re-store used the same
    # forest, so the document must be exactly what the bench received.
    after = db.describe("dblp")
    assert after["nodes"] == before["nodes"]
    assert after["shape_fingerprint"] == before["shape_fingerprint"]
    assert db.load_forest("dblp").canonical() == forest.canonical()
