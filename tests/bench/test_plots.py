"""Tests for the bench harness: reporting tables and ASCII plots."""

import os

import pytest

from repro.bench.plots import AsciiChart, sparkline
from repro.bench.reporting import SeriesTable, format_seconds, write_report


class TestSparkline:
    def test_monotone(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestAsciiChart:
    def test_render_contains_marks_and_legend(self):
        chart = AsciiChart("test chart", height=6, width=30)
        chart.add_series("linear", [(1, 1), (2, 2), (3, 3)])
        chart.add_series("flat", [(1, 2), (2, 2), (3, 2)])
        text = chart.render()
        assert "test chart" in text
        assert "* linear" in text
        assert "o flat" in text
        assert "*" in text.splitlines()[1]  # max point at the top row

    def test_axis_labels(self):
        chart = AsciiChart("axes", height=4, width=20)
        chart.add_series("s", [(0, 0), (10, 100)])
        text = chart.render()
        assert "100" in text
        assert "0" in text and "10" in text

    def test_no_data(self):
        assert "(no data)" in AsciiChart("empty").render()

    def test_single_point(self):
        chart = AsciiChart("dot", height=3, width=10)
        chart.add_series("s", [(1, 1)])
        assert "*" in chart.render()


class TestSeriesTable:
    def test_alignment(self):
        table = SeriesTable("t", "x", ["a", "b"])
        table.add_row(1, 10, 200.5)
        table.add_row(2, 3000, 0.25)
        lines = table.render().splitlines()
        assert lines[0] == "t"
        header = lines[2]
        assert header.split() == ["x", "a", "b"]

    def test_wrong_arity_rejected(self):
        table = SeriesTable("t", "x", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2, 3)

    def test_notes_rendered(self):
        table = SeriesTable("t", "x", ["a"])
        table.add_row(1, 2)
        table.note("hello")
        assert "note: hello" in table.render()

    def test_write_report(self, tmp_path):
        table = SeriesTable("t", "x", ["a"])
        table.add_row(1, 2)
        path = write_report("unit", table.render(), directory=str(tmp_path))
        assert os.path.exists(path)
        assert "t" in open(path).read()


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(0.0000005) == "0us"
        assert format_seconds(0.0005) == "500us"
        assert format_seconds(0.25) == "250.0ms"
        assert format_seconds(3.5) == "3.50s"
