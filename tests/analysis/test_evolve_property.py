"""Property-based soundness of the evolution analyzer's verdicts.

The verdict the analyzer must never get wrong is **compatible**: it
promises the guard's output is unaffected by the evolution, so serving
can keep the cached plan and nobody re-validates anything.  We fuzz
that promise directly:

* The *evolution* is a random *reversible* (strongly-typed) guard
  applied to a random document — the paper's schema-evolution setting,
  where the arrangement changes but the data and its closest
  relationships survive exactly.

* For every random *test guard*, a ``compatible`` verdict must mean
  identical transform output under either arrangement (zero false
  compatibles), and a ``broken`` verdict must mean the guard actually
  fails at run time on the evolved document.

"Identical" is canonical-tree identity: byte-identical after sorting
siblings into a canonical order.  Sibling order is immaterial in the
shape model (a shape is an unordered tree — ``diff_shapes`` reports
reordered instances as "identical up to sibling order"), and an
evolution that merely permutes siblings renders in source document
order, so byte-level order can differ while the data, grouping and
nesting — everything the model promises — are the same.

``degraded`` is deliberately unasserted: it is the conservative bucket
(the output *may* differ — grouping, cardinality, loss status), and
conservatism there is allowed, exactly like the loss theorems' scope
in ``tests/integration/test_theorems.py``.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro
from repro.analysis.evolve import (
    VERDICT_BROKEN,
    VERDICT_COMPATIBLE,
    as_index,
    check_guard_evolution,
)
from repro.errors import XMorphError

from tests.strategies import TAGS, documents

#: Candidate rearrangements; only applications that type-check as
#: *reversible* on the concrete document are used as evolutions.
EVOLUTION_GUARDS = [
    "MUTATE r",
    "MUTATE a [ b ]",
    "MUTATE b [ a ]",
    "MUTATE c [ d ]",
    "MUTATE a [ b [ c ] ]",
    "MUTATE d [ c [ b ] ]",
]

TEST_GUARD_FORMS = [
    "MORPH {x}",
    "MORPH {x} [ {y} ]",
    "MUTATE {x} [ {y} ]",
]


def evolve_document(forest, evolution_guard):
    """The evolved document, or None when this evolution is not
    reversible on this instance (out of scope for the parity claim)."""
    try:
        if not repro.check(forest, evolution_guard).reversible:
            return None
        evolved = repro.transform(forest, evolution_guard)
    except XMorphError:
        return None
    # Round-trip through text: the evolved arrangement is a fresh
    # document, exactly as if the DBA had migrated the store.
    return repro.parse_forest(evolved.xml())


def run_forced(forest, guard):
    """Transform with loss force-accepted, as parity ground truth."""
    return repro.transform(forest, f"CAST ({guard})").xml()


def canonical(xml_text):
    """A sibling-order-insensitive normal form of a serialized result."""
    forest = repro.parse_forest(xml_text)

    def norm(node):
        return (node.name, (node.text or "").strip(), tuple(sorted(norm(c) for c in node.children)))

    return tuple(sorted(norm(root) for root in forest.roots))


class TestVerdictParity:
    @settings(max_examples=60, deadline=None)
    @given(
        documents(max_depth=3, max_children=3),
        st.sampled_from(EVOLUTION_GUARDS),
        st.sampled_from(TEST_GUARD_FORMS),
        st.sampled_from(TAGS),
        st.sampled_from(TAGS),
    )
    def test_no_false_compatibles(self, forest, evolution, form, x, y):
        assume(x != y)
        new_forest = evolve_document(forest, evolution)
        assume(new_forest is not None)
        guard = form.format(x=x, y=y)
        verdict = check_guard_evolution(
            as_index(forest), as_index(new_forest), guard
        )
        if verdict.verdict != VERDICT_COMPATIBLE:
            return
        # Compatible promises: same output (canonical sibling order).
        old_output = run_forced(forest, guard)
        new_output = run_forced(new_forest, guard)
        assert canonical(old_output) == canonical(new_output), (
            f"false compatible: {guard!r} across {evolution!r}\n"
            f"old: {old_output}\nnew: {new_output}\n"
            f"diff:\n{verdict.evolution_text}"
        )

    @settings(max_examples=60, deadline=None)
    @given(
        documents(max_depth=3, max_children=3),
        st.sampled_from(EVOLUTION_GUARDS),
        st.sampled_from(TAGS),
        st.sampled_from(TAGS),
    )
    def test_broken_means_runtime_failure(self, forest, evolution, x, y):
        assume(x != y)
        new_forest = evolve_document(forest, evolution)
        assume(new_forest is not None)
        guard = f"MORPH {x} [ {y} ]"
        verdict = check_guard_evolution(
            as_index(forest), as_index(new_forest), guard
        )
        if verdict.verdict != VERDICT_BROKEN:
            return
        # Broken promises: the guard does not run on the evolved data
        # (even with loss force-accepted, a dangling label is fatal).
        try:
            run_forced(new_forest, guard)
        except XMorphError:
            return
        raise AssertionError(
            f"verdict said broken but {guard!r} ran on the evolved document"
        )

    @settings(max_examples=40, deadline=None)
    @given(documents(max_depth=3, max_children=3))
    def test_identity_evolution_never_degrades(self, forest):
        # Evolving a document to itself must leave every runnable guard
        # compatible: the diff is empty, so nothing can have changed.
        new_forest = repro.parse_forest(repro.serialize(forest))
        for tag in TAGS:
            verdict = check_guard_evolution(
                as_index(forest), as_index(new_forest), f"MORPH {tag}"
            )
            assert verdict.verdict in (VERDICT_COMPATIBLE, VERDICT_BROKEN)
            if verdict.verdict == VERDICT_BROKEN:
                # Only a guard that never matched can be non-compatible
                # here, and it must be broken on both sides.
                assert any(
                    "broken before the evolution" in d.message
                    for d in verdict.diagnostics
                )
