"""Tests for the did-you-mean engine (Damerau-Levenshtein)."""

from repro.analysis import did_you_mean, edit_distance


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("author", "author") == 0

    def test_substitution(self):
        assert edit_distance("author", "authar") == 1

    def test_deletion_and_insertion(self):
        assert edit_distance("athor", "author") == 1
        assert edit_distance("authorr", "author") == 1

    def test_transposition_counts_once(self):
        # Plain Levenshtein would say 2; Damerau's adjacent swap is 1.
        assert edit_distance("auhtor", "author") == 1

    def test_empty_strings(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_limit_bails_early(self):
        assert edit_distance("a", "zzzzzzzzzz", limit=3) > 3

    def test_symmetric(self):
        assert edit_distance("publisher", "publsiher") == edit_distance(
            "publsiher", "publisher"
        )


class TestDidYouMean:
    CANDIDATES = ["author", "publisher", "title", "name"]

    def test_close_match(self):
        assert did_you_mean("athor", self.CANDIDATES) == "author"

    def test_transposed(self):
        assert did_you_mean("auhtor", self.CANDIDATES) == "author"

    def test_no_match_when_far(self):
        assert did_you_mean("zzzzzz", self.CANDIDATES) is None

    def test_short_labels_need_close_match(self):
        # For a 3-letter label the threshold is 1.
        assert did_you_mean("nam", self.CANDIDATES) == "name"
        assert did_you_mean("nxy", self.CANDIDATES) is None

    def test_exact_case_insensitive_match_is_not_a_suggestion(self):
        # 'AUTHOR' already matches 'author' (labels are case-insensitive);
        # suggesting the lowercase spelling would be noise.
        assert did_you_mean("AUTHOR", self.CANDIDATES) is None

    def test_deterministic_tiebreak(self):
        # Equidistant candidates resolve alphabetically, not by dict order.
        assert did_you_mean("bat", ["cat", "bar"]) == "bar"
        assert did_you_mean("bat", ["bar", "cat"]) == "bar"

    def test_empty_candidates(self):
        assert did_you_mean("anything", []) is None
