"""Tests for the schema-evolution compatibility analyzer."""

import json

import pytest

import repro
from repro.analysis import (
    VERDICT_BROKEN,
    VERDICT_COMPATIBLE,
    VERDICT_DEGRADED,
    analyze_evolution,
    check_guard_evolution,
)
from repro.analysis.evolve import GuardSpec, load_guards
from repro.storage import Database

from tests.conftest import FIG1A, FIG1B

OLD_OPTIONAL = """
<data>
  <book><title>X</title><author><name>A</name></author></book>
  <book><title>Y</title><author><name>B</name></author></book>
</data>
"""

NEW_OPTIONAL = """
<data>
  <book><title>X</title><author><name>A</name></author></book>
  <book><title>Y</title></book>
</data>
"""

OLD_ISBN = "<catalog><book><title>X</title><isbn>1</isbn></book></catalog>"
NEW_ISBN = "<catalog><book><title>X</title></book></catalog>"


def codes(verdict):
    return {d.code for d in verdict.diagnostics}


class TestVerdicts:
    def test_compatible_across_regrouping(self):
        # The paper's Figure 1 (a)->(b): same data, books regrouped
        # under publishers.  A book-centric guard survives untouched.
        report = analyze_evolution(
            FIG1A, FIG1B, {"books": "MORPH book [ title author [ name ] ]"}
        )
        assert report.verdict_of("books") == VERDICT_COMPATIBLE
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0

    def test_removed_type_breaks_guard(self):
        report = analyze_evolution(
            OLD_ISBN, NEW_ISBN, {"keep": "MORPH book [ title isbn ]"}
        )
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_BROKEN
        assert "XM601" in codes(verdict)
        assert report.exit_code() == 1

    def test_xm601_names_the_old_resolution(self):
        report = analyze_evolution(
            OLD_ISBN, NEW_ISBN, {"keep": "MORPH book [ title isbn ]"}
        )
        (finding,) = [
            d for d in report.verdicts[0].diagnostics if d.code == "XM601"
        ]
        assert "catalog.book.isbn" in finding.message
        assert finding.span is not None  # anchored at the isbn clause

    def test_xm601_related_note_points_at_the_shape_change(self):
        report = analyze_evolution(
            OLD_ISBN, NEW_ISBN, {"keep": "MORPH book [ title isbn ]"}
        )
        (finding,) = [
            d for d in report.verdicts[0].diagnostics if d.code == "XM601"
        ]
        assert finding.related is not None
        assert finding.related.source_name == "<evolution>"
        assert "removed: isbn" in finding.related.message
        # The related span selects the right line of the rendered diff.
        text = report.evolution_text
        start, end = finding.related.span.start, finding.related.span.end
        assert text[start:end] == "removed: isbn — was under book"

    def test_already_broken_guard_stays_broken_with_honest_message(self):
        report = analyze_evolution(
            FIG1A, FIG1B, {"shelves": "MORPH shelf [ book ]"}
        )
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_BROKEN
        assert any(
            "broken before the evolution" in d.message
            for d in verdict.diagnostics
        )

    def test_query_path_break_is_xm602(self):
        # The wildcard guard's output silently shrinks; only the query
        # notices the missing path.
        report = analyze_evolution(
            OLD_ISBN,
            NEW_ISBN,
            [
                GuardSpec(
                    "catalog",
                    "MORPH book [ * ]",
                    "for $b in /book return $b/isbn/text()",
                )
            ],
        )
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_BROKEN
        assert "XM602" in codes(verdict)

    def test_cardinality_loosening_degrades(self):
        report = analyze_evolution(
            OLD_OPTIONAL,
            NEW_OPTIONAL,
            {"books": "MORPH book [ title author [ name ] ]"},
        )
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_DEGRADED
        assert "XM605" in codes(verdict)
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 2

    def test_loss_status_change_degrades(self):
        # Regrouping by author name was loss-free; once a book can lack
        # an author, the same guard silently narrows.
        report = analyze_evolution(
            OLD_OPTIONAL, NEW_OPTIONAL, {"by_name": "MORPH name [ book ]"}
        )
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_DEGRADED
        (finding,) = [d for d in verdict.diagnostics if d.code == "XM604"]
        assert "strongly-typed" in finding.message
        assert "narrowing" in finding.message
        assert finding.hint is not None and "CAST" in finding.hint

    def test_resolution_drift_is_informational_only(self):
        report = analyze_evolution(
            FIG1A, FIG1B, {"books": "MORPH book [ title ]"}
        )
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_COMPATIBLE
        drift = [d for d in verdict.diagnostics if d.code == "XM606"]
        assert drift, "moving book under publisher should be noted"
        assert all(str(d.severity) == "info" for d in drift)

    def test_identical_shapes_are_all_compatible_with_no_noise(self):
        report = analyze_evolution(
            FIG1A, FIG1A, {"books": "MORPH book [ title author [ name ] ]"}
        )
        (verdict,) = report.verdicts
        assert verdict.verdict == VERDICT_COMPATIBLE
        assert verdict.diagnostics == []
        assert "identical" in report.evolution_text


class TestReport:
    def test_counts_and_summary(self):
        report = analyze_evolution(
            OLD_ISBN,
            NEW_ISBN,
            {"keep": "MORPH book [ title isbn ]", "titles": "MORPH book [ title ]"},
        )
        assert report.counts == {"compatible": 1, "degraded": 0, "broken": 1}
        assert "1 broken" in report.summary()

    def test_json_schema(self):
        report = analyze_evolution(
            OLD_ISBN, NEW_ISBN, {"keep": "MORPH book [ title isbn ]"}
        )
        payload = json.loads(report.render_json())
        assert payload["schema"] == "xmorph-evolve/v1"
        assert payload["counts"]["broken"] == 1
        assert payload["diff"]["changes"] == [
            {"kind": "removed", "name": "isbn", "detail": "was under book"}
        ]
        (guard,) = payload["guards"]
        assert guard["verdict"] == "broken"
        related = [
            d["related"] for d in guard["diagnostics"] if d.get("related")
        ]
        assert related and related[0]["source"] == "<evolution>"

    def test_text_report_shows_diff_and_verdict_sections(self):
        report = analyze_evolution(
            OLD_ISBN, NEW_ISBN, {"keep": "MORPH book [ title isbn ]"}
        )
        text = report.render_text()
        assert "== shape evolution ==" in text
        assert "removed: isbn" in text
        assert "== keep: broken ==" in text
        assert "= note: <evolution>:" in text

    def test_github_rendering_escapes_and_locates(self):
        report = analyze_evolution(
            OLD_ISBN,
            NEW_ISBN,
            [GuardSpec("keep", "MORPH book [ title isbn ]", path="g/keep.guard")],
        )
        rendered = report.render_github()
        assert rendered.startswith("::error ")
        assert "file=g/keep.guard" in rendered
        assert "line=1" in rendered and "col=" in rendered
        assert "\n" not in rendered.splitlines()[0]

    def test_guards_accepted_as_mapping_tuples_and_specs(self):
        by_map = analyze_evolution(FIG1A, FIG1B, {"g": "MORPH author [ name ]"})
        by_tuple = analyze_evolution(FIG1A, FIG1B, [("g", "MORPH author [ name ]")])
        by_spec = analyze_evolution(
            FIG1A, FIG1B, [GuardSpec("g", "MORPH author [ name ]")]
        )
        assert (
            by_map.verdict_of("g")
            == by_tuple.verdict_of("g")
            == by_spec.verdict_of("g")
            == VERDICT_COMPATIBLE
        )


class TestCorpusLoader:
    def test_load_guards_reads_sidecar_queries(self, tmp_path):
        (tmp_path / "a.guard").write_text("# comment\nMORPH book [ title ]\n")
        (tmp_path / "a.query").write_text("for $b in /book return $b/title\n")
        (tmp_path / "b.guard").write_text("MORPH author\n")
        (tmp_path / "ignored.txt").write_text("not a guard")
        specs = load_guards(str(tmp_path))
        assert [s.name for s in specs] == ["a", "b"]
        assert specs[0].query is not None and "/book" in specs[0].query
        assert specs[1].query is None
        assert specs[0].path.endswith("a.guard")

    def test_guard_comments_are_tolerated_by_the_analyzer(self, tmp_path):
        (tmp_path / "a.guard").write_text("# heading\nMORPH book [ title ]\n")
        report = analyze_evolution(OLD_ISBN, NEW_ISBN, load_guards(str(tmp_path)))
        assert report.verdict_of("a") == VERDICT_COMPATIBLE


class TestInterpreterApi:
    def test_check_evolution_single_guard(self):
        interpreter = repro.Interpreter(repro.parse_forest(OLD_ISBN))
        verdict = interpreter.check_evolution(NEW_ISBN, "MORPH book [ title isbn ]")
        assert verdict.verdict == VERDICT_BROKEN
        assert "XM601" in codes(verdict)

    def test_check_evolution_with_query(self):
        interpreter = repro.Interpreter(repro.parse_forest(OLD_ISBN))
        verdict = interpreter.check_evolution(
            NEW_ISBN,
            "MORPH book [ * ]",
            "for $b in /book return $b/isbn/text()",
        )
        assert verdict.verdict == VERDICT_BROKEN

    def test_check_guard_evolution_defaults_diff(self):
        old = repro.parse_forest(FIG1A)
        new = repro.parse_forest(FIG1B)
        from repro.analysis.evolve import as_index

        verdict = check_guard_evolution(
            as_index(old), as_index(new), "MORPH author [ name ]"
        )
        assert verdict.verdict == VERDICT_COMPATIBLE


class TestDatabaseIntegration:
    @pytest.fixture
    def db(self, tmp_path):
        database = Database(str(tmp_path / "evo.db"), durable=False)
        database.store_document("v1", OLD_OPTIONAL)
        database.store_document("v2", NEW_OPTIONAL)
        yield database
        database.close()

    def test_counters_flow_into_stats(self, db):
        report = db.check_evolution(
            "v1",
            "v2",
            {"titles": "MORPH book [ title ]", "by_name": "MORPH name [ book ]"},
        )
        assert report.counts["compatible"] == 1
        assert db.stats.events["evolve.compatible"] == 1
        assert db.stats.events["evolve.degraded"] == 1

    def test_selective_plan_invalidation(self, db):
        compatible = "MORPH book [ title ]"
        degraded = "MORPH name [ book ]"
        db.transform("v1", compatible)
        db.transform("v1", degraded)
        old_fp = db.index("v1").fingerprint
        new_fp = db.index("v2").fingerprint
        db.check_evolution("v1", "v2", {"a": compatible, "b": degraded})
        # Exactly the non-compatible plan is gone; the compatible one
        # stays valid for the old arrangement and is pre-warmed for the
        # new one.
        assert (compatible, old_fp) in db.plan_cache
        assert (degraded, old_fp) not in db.plan_cache
        assert (compatible, new_fp) in db.plan_cache
        assert db.stats.events["evolve.plans_invalidated"] == 1
        assert db.stats.events["evolve.plans_warmed"] == 1

    def test_warmed_plan_serves_without_recompiling(self, db):
        compatible = "MORPH book [ title ]"
        db.check_evolution("v1", "v2", {"a": compatible})
        hits_before = db.plan_cache.hits
        result = db.transform("v2", compatible)
        assert db.plan_cache.hits == hits_before + 1
        assert "<title>" in result.xml()

    def test_unknown_guards_are_left_alone(self, db):
        other = "MORPH author [ name ]"
        db.transform("v1", other)
        old_fp = db.index("v1").fingerprint
        db.check_evolution("v1", "v2", {"a": "MORPH book [ title ]"})
        assert (other, old_fp) in db.plan_cache


class TestPlanCacheApplyEvolution:
    def test_apply_evolution_counts(self):
        from repro.cache import PlanCache

        cache = PlanCache(capacity=8)

        class FakePlan:
            def __init__(self, guard, fingerprint):
                self.guard = guard
                self.fingerprint = fingerprint

        for guard in ("g1", "g2", "g3"):
            cache.put(FakePlan(guard, "fp-old"))
        cache.put(FakePlan("g1", "fp-other"))
        outcome = cache.apply_evolution(
            "fp-old", {"g1": "compatible", "g2": "degraded", "g3": "broken"}
        )
        assert outcome == {"kept": 1, "invalidated": 2}
        assert ("g1", "fp-old") in cache
        assert ("g2", "fp-old") not in cache
        assert ("g3", "fp-old") not in cache
        assert ("g1", "fp-other") in cache  # other fingerprints untouched
        assert cache.invalidations == 2
