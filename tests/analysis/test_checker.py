"""End-to-end tests for the static analysis driver (`analyze`).

Each test drives a whole guard through the analyzer and asserts on the
coded diagnostics — the same surface `xmorph check` prints.
"""

import pytest

from repro.analysis import Severity, analyze
from tests.conftest import FIG1A, FIG1A_OPTIONAL_NAME, FIG1C


def codes(result):
    return [d.code for d in result.diagnostics]


def find(result, code):
    matches = [d for d in result.diagnostics if d.code == code]
    assert matches, f"expected a {code} in {codes(result)}"
    return matches[0]


class TestSyntax:
    def test_clean_guard(self):
        result = analyze(FIG1A, "MORPH author [ name book [ title ] ]")
        assert result.ok
        assert result.exit_code() == 0
        assert str(result.guard_type) == "strongly-typed"

    def test_parse_error_is_spanned_xm102(self):
        result = analyze(FIG1A, "MORPH author [ name")
        d = find(result, "XM102")
        assert d.severity is Severity.ERROR
        assert d.span is not None
        assert result.exit_code() == 1

    def test_unexpected_character_is_xm101(self):
        result = analyze(FIG1A, "MORPH auth%or")
        d = find(result, "XM101")
        assert d.span is not None
        guard = "MORPH auth%or"
        assert guard[d.span.start : d.span.end] == "%"

    def test_syntax_error_stops_analysis(self):
        result = analyze(FIG1A, "MORPH [")
        assert codes(result) == ["XM102"]


class TestLabels:
    def test_unknown_label_with_suggestion(self):
        result = analyze(FIG1A, "MORPH athor [ name ]")
        d = find(result, "XM201")
        assert d.severity is Severity.ERROR
        assert "athor" in d.message
        assert "did you mean 'author'" in d.hint
        # The span covers exactly the misspelled label.
        assert "MORPH athor [ name ]"[d.span.start : d.span.end] == "athor"
        assert result.exit_code() == 1

    def test_unknown_label_under_type_fill_is_warning(self):
        result = analyze(FIG1A, "TYPE-FILL (MORPH athor [ name ])")
        d = find(result, "XM201")
        assert d.severity is Severity.WARNING
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 2

    def test_ambiguous_label_is_info(self):
        result = analyze(FIG1A, "MORPH book [ name ]")
        d = find(result, "XM202")
        assert d.severity is Severity.INFO
        assert "data.book.author.name" in d.message
        assert "data.book.publisher.name" in d.message

    def test_dotted_label_disambiguates(self):
        result = analyze(FIG1A, "MORPH book [ author.name ]")
        assert "XM202" not in codes(result)


class TestLoss:
    WIDENING = "MORPH author [ title name publisher [ name ] ]"

    def test_widening_without_cast_is_error(self):
        result = analyze(FIG1C, self.WIDENING)
        d = find(result, "XM302")
        assert d.severity is Severity.ERROR
        assert "CAST-WIDENING" in d.hint
        # Spanned at one of the labels selecting the lossy pair's types.
        assert d.span is not None
        assert self.WIDENING[d.span.start : d.span.end] in {
            "title",
            "publisher",
            "name",
        }
        assert result.exit_code() == 1

    def test_cast_widening_downgrades_to_info(self):
        result = analyze(FIG1C, f"CAST-WIDENING ({self.WIDENING})")
        d = find(result, "XM302")
        assert d.severity is Severity.INFO
        assert result.exit_code() == 0

    def test_bang_accepts_loss_as_xm304(self):
        result = analyze(FIG1C, "MORPH author [ !title name publisher [ name ] ]")
        assert "XM302" not in codes(result)
        assert find(result, "XM304").severity is Severity.INFO
        assert result.exit_code() == 0

    def test_narrowing_without_cast_is_spanned_error(self):
        guard = "MUTATE author.name [ author ]"
        result = analyze(FIG1A_OPTIONAL_NAME, guard)
        d = find(result, "XM301")
        assert d.severity is Severity.ERROR
        assert "CAST-NARROWING" in d.hint
        assert guard[d.span.start : d.span.end] in {"author.name", "author"}
        assert result.exit_code() == 1

    def test_omitted_types_reported_as_info(self):
        result = analyze(FIG1A, "MORPH author [ name ]")
        d = find(result, "XM303")
        assert d.severity is Severity.INFO
        assert "data.book.title" in d.message

    def test_type_fill_synthesis_reported(self):
        result = analyze(FIG1A, "TYPE-FILL (MORPH author [ name isbn ])")
        d = find(result, "XM305")
        assert "isbn" in d.message


class TestLints:
    def test_duplicate_target_label(self):
        result = analyze(FIG1A, "MORPH author [ name name ]")
        d = find(result, "XM401")
        assert d.severity is Severity.WARNING
        assert result.exit_code() == 0
        assert result.exit_code(strict=True) == 2

    def test_redundant_bang(self):
        result = analyze(FIG1A, "MORPH author [ !name ]")
        d = find(result, "XM402")
        assert d.severity is Severity.WARNING
        assert "MORPH author [ !name ]"[d.span.start : d.span.end].startswith("!")

    def test_needed_bang_not_flagged(self):
        result = analyze(FIG1C, "MORPH author [ !title name publisher [ name ] ]")
        assert "XM402" not in codes(result)

    def test_dead_drop_clause(self):
        result = analyze(FIG1A, "MUTATE (DROP isbn)")
        d = find(result, "XM403")
        assert d.severity is Severity.ERROR  # the interpreter would raise too

    def test_live_drop_not_flagged(self):
        result = analyze(FIG1A, "MUTATE (DROP title)")
        assert "XM403" not in codes(result)

    def test_redundant_cast(self):
        result = analyze(FIG1A, "CAST (MORPH author [ name ])")
        d = find(result, "XM405")
        assert d.severity is Severity.WARNING
        assert "CAST" in "CAST (MORPH author [ name ])"[d.span.start : d.span.end]

    def test_needed_cast_not_flagged(self):
        result = analyze(
            FIG1C, "CAST-WIDENING (MORPH author [ title name publisher [ name ] ])"
        )
        assert "XM405" not in codes(result)

    def test_redundant_type_fill(self):
        result = analyze(FIG1A, "TYPE-FILL (MORPH author [ name ])")
        assert find(result, "XM406").severity is Severity.WARNING


class TestQueryCompat:
    def test_query_over_produced_types_is_clean(self):
        result = analyze(
            FIG1A,
            "MORPH author [ name ]",
            query="for $a in /author return $a/name/text()",
        )
        assert "XM404" not in codes(result)

    def test_query_over_dropped_type_warns(self):
        result = analyze(
            FIG1A,
            "MORPH author [ name ]",
            query="for $a in /author return $a/title/text()",
        )
        d = find(result, "XM404")
        assert d.severity is Severity.WARNING
        assert d.source_name == "<query>"
        assert "title" in d.message

    def test_query_syntax_error_is_xm103(self):
        result = analyze(FIG1A, "MORPH author [ name ]", query="for $a in")
        d = find(result, "XM103")
        assert d.severity is Severity.ERROR
        assert d.source_name == "<query>"


class TestResultSurface:
    def test_sources_mapping(self):
        result = analyze(FIG1A, "MORPH author [ name ]", query="/author")
        assert set(result.sources) == {"<guard>", "<query>"}

    def test_render_text_includes_summary_counts(self):
        result = analyze(FIG1A, "MORPH athor [ name ]")
        assert "1 error(s)" in result.summary()

    def test_diagnostics_sorted_by_position(self):
        result = analyze(FIG1A, "MORPH athor [ naem ]")
        spans = [d.span.start for d in result.diagnostics if d.span is not None]
        assert spans == sorted(spans)

    def test_interpreter_diagnose_entry_point(self, fig1a):
        import repro

        result = repro.Interpreter(fig1a).diagnose("MORPH athor [ name ]")
        assert "XM201" in codes(result)
