"""Tests for Diagnostic objects, spans, and the text/JSON renderers."""

import json

import pytest

from repro.analysis import CODES, Diagnostic, Severity, render_json, render_text
from repro.analysis.diagnostics import sort_key
from repro.lang.span import Span, line_column, merge_spans

GUARD = "MORPH athor [ name ]"


def diag(code="XM201", severity=Severity.ERROR, span=None, hint=None, **kw):
    return Diagnostic(
        code, severity, CODES[code], span=span, hint=hint, **kw
    )


class TestSpan:
    def test_line_column_basics(self):
        source = "ab\ncd"
        assert line_column(source, 0) == (1, 1)
        assert line_column(source, 1) == (1, 2)
        assert line_column(source, 3) == (2, 1)
        assert line_column(source, 4) == (2, 2)

    def test_line_column_clamps(self):
        assert line_column("ab", 99) == (1, 3)
        assert line_column("ab", -5) == (1, 1)

    def test_at(self):
        span = Span.at(GUARD, 6, 11)
        assert (span.line, span.column) == (1, 7)
        assert (span.end_line, span.end_column) == (1, 12)
        assert GUARD[span.start : span.end] == "athor"

    def test_at_multiline(self):
        source = "MORPH a [\n  b\n]"
        span = Span.at(source, 12, 15)
        assert (span.line, span.column) == (2, 3)
        assert span.end_line == 3

    def test_merge(self):
        a = Span.at(GUARD, 0, 5)
        b = Span.at(GUARD, 6, 11)
        merged = a.merge(b)
        assert (merged.start, merged.end) == (0, 11)
        assert merged.column == 1 and merged.end_column == 12
        # Order-independent.
        assert b.merge(a) == merged

    def test_merge_containment(self):
        outer = Span.at(GUARD, 0, 20)
        inner = Span.at(GUARD, 6, 11)
        assert outer.merge(inner) == outer

    def test_merge_spans_skips_none(self):
        span = Span.at(GUARD, 6, 11)
        assert merge_spans(None, span, None) == span
        assert merge_spans(None, None) is None

    def test_label(self):
        assert Span.at(GUARD, 6, 11).label == "1:7-12"
        assert Span.at(GUARD, 6, 6).label == "1:7"


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("XM999", Severity.ERROR, "nope")

    def test_every_code_has_a_description(self):
        for code, description in CODES.items():
            assert code.startswith("XM") and len(code) == 5
            assert description

    def test_location_with_span(self):
        d = diag(span=Span.at(GUARD, 6, 11))
        assert d.location == "<guard>:1:7"
        assert str(d).startswith("<guard>:1:7: error[XM201]:")

    def test_location_without_span(self):
        assert diag().location == "<guard>"

    def test_to_dict(self):
        d = diag(span=Span.at(GUARD, 6, 11), hint="did you mean 'author'?")
        payload = d.to_dict()
        assert payload["code"] == "XM201"
        assert payload["severity"] == "error"
        assert payload["span"]["column"] == 7
        assert payload["hint"] == "did you mean 'author'?"

    def test_severity_rank_orders(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_sort_key_position_before_severity(self):
        early_info = diag("XM303", Severity.INFO, span=Span.at(GUARD, 0, 5))
        late_error = diag("XM201", Severity.ERROR, span=Span.at(GUARD, 6, 11))
        spanless = diag("XM303", Severity.INFO)
        ordered = sorted([spanless, late_error, early_info], key=sort_key)
        assert ordered == [early_info, late_error, spanless]


class TestRender:
    def test_text_has_gutter_and_carets(self):
        d = diag(span=Span.at(GUARD, 6, 11), hint="did you mean 'author'?")
        text = render_text([d], {"<guard>": GUARD})
        assert "  1 | MORPH athor [ name ]" in text
        assert "    |       ^^^^^" in text
        assert "  = help: did you mean 'author'?" in text

    def test_text_multiline_span_notes_continuation(self):
        source = "MORPH a [\n  b\n]"
        d = diag(span=Span.at(source, 0, len(source)))
        text = render_text([d], {"<guard>": source})
        assert "... (continues to line 3)" in text

    def test_text_without_span_is_just_the_message(self):
        text = render_text([diag()], {"<guard>": GUARD})
        assert "^" not in text
        assert "[XM201]" in text

    def test_json_lines_round_trip(self):
        diagnostics = [
            diag(span=Span.at(GUARD, 6, 11)),
            diag("XM303", Severity.INFO),
        ]
        lines = render_json(diagnostics).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["span"]["start"] == 6
        assert json.loads(lines[1])["span"] is None

    def test_json_empty(self):
        assert render_json([]) == ""
