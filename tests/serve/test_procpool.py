"""ProcessTransformPool: parity, routing, crash recovery, deadlines.

The process pool's contract mirrors the thread pool's — byte-identical
output, XM540 deadlines, graceful degradation — plus the properties
only a multi-process executor has: forked workers over shared-reader
snapshots, cost-routed inlining, and respawn-on-death with no lost or
duplicated responses.  SIGKILL (uncatchable) stands in for every way a
worker can die.
"""

import os
import signal
import time

import pytest

from repro.errors import StorageError, TransformTimeoutError, XMorphError
from repro.serve import (
    ProcessTransformPool,
    RemoteTransformError,
    RemoteTransformResult,
    ServeTelemetry,
    TransformPool,
    make_pool,
    plan_cost_estimate,
)
from repro.storage import Database

from tests.conftest import FIG1A

GUARD = "MORPH author [ name ]"
GUARDS = [
    GUARD,
    "CAST MORPH book [ title ]",
    "MORPH publisher [ name ]",
]

#: Enough records that every GUARD's cost estimate clears the default
#: inline threshold — pooled submissions genuinely cross the pipe.
BULK = "<data>" + "".join(
    f"<book><title>T{i}</title><author><name>A{i % 7}</name></author>"
    f"<publisher><name>P{i % 3}</name></publisher></book>"
    for i in range(40)
) + "</data>"


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    """One store, written once; tests open their own reader handles."""
    path = str(tmp_path_factory.mktemp("procpool") / "p.db")
    with Database(path, durable=False) as db:
        db.store_document("doc", BULK)
        db.store_document("tiny", FIG1A)
        serial = {g: db.transform("doc", g).xml() for g in GUARDS}
    return path, serial


@pytest.fixture
def reader(stored):
    path, _ = stored
    db = Database(path, mode="r", durable=False)
    yield db
    db.close()


class TestParity:
    def test_process_output_byte_identical_to_serial(self, stored, reader):
        _, serial = stored
        requests = [("doc", g) for g in GUARDS for _ in range(3)]
        with ProcessTransformPool(
            reader, workers=2, inline_threshold=None, max_queue=len(requests)
        ) as pool:
            results = pool.transform_many(requests)
        assert len(results) == len(requests)
        for (_, guard), result in zip(requests, results):
            assert isinstance(result, RemoteTransformResult)
            assert result.xml() == serial[guard]

    def test_stream_parity(self, stored, reader):
        _, serial = stored
        with ProcessTransformPool(reader, workers=2, inline_threshold=None) as pool:
            texts = pool.stream_many([("doc", GUARD)] * 4)
        assert all(isinstance(t, str) for t in texts)
        # Streamed text renders the same elements; pin against the
        # thread pool's streaming output instead of the batch xml().
        with TransformPool(reader, workers=1) as pool:
            expected = pool.stream_many([("doc", GUARD)])[0]
        assert texts == [expected] * 4

    def test_thread_and_process_agree(self, reader):
        requests = [("doc", g) for g in GUARDS]
        with TransformPool(reader, workers=4) as pool:
            threaded = [r.xml() for r in pool.transform_many(requests)]
        with ProcessTransformPool(reader, workers=2, inline_threshold=None) as pool:
            forked = [r.xml() for r in pool.transform_many(requests)]
        assert threaded == forked


class TestRouting:
    def test_needs_shared_reader_handle(self, tmp_path):
        with Database(str(tmp_path / "w.db"), durable=False) as db:
            db.store_document("doc", FIG1A)
            with pytest.raises(StorageError, match='mode="r"'):
                ProcessTransformPool(db)

    def test_tiny_transform_runs_inline(self, reader):
        assert plan_cost_estimate(reader, "tiny", GUARD) <= 32
        with ProcessTransformPool(reader, workers=2) as pool:
            result = pool.transform_many([("tiny", GUARD)])[0]
        # Inline results are real TransformResults (forest attached),
        # not pipe-serialized remotes.
        assert not isinstance(result, RemoteTransformResult)
        assert reader.stats.events.get("serve.inline_small", 0) >= 1

    def test_large_transform_crosses_the_pipe(self, reader):
        assert plan_cost_estimate(reader, "doc", GUARD) > 32
        with ProcessTransformPool(reader, workers=2) as pool:
            result = pool.transform_many([("doc", GUARD)])[0]
        assert isinstance(result, RemoteTransformResult)

    def test_unknown_document_fails_inline(self, reader):
        # Estimate 0 for unknown docs: the error is produced on the
        # submitting thread without waking a worker.
        assert plan_cost_estimate(reader, "nope", GUARD) == 0.0
        with ProcessTransformPool(reader, workers=2) as pool:
            with pytest.raises(XMorphError):
                pool.transform_many([("nope", GUARD)])

    def test_worker_error_rehydrates_with_code(self, reader):
        with ProcessTransformPool(reader, workers=2, inline_threshold=None) as pool:
            with pytest.raises(XMorphError) as excinfo:
                pool.transform_many([("nope", GUARD)])
        assert isinstance(excinfo.value, RemoteTransformError)
        assert "nope" in str(excinfo.value)

    def test_no_workers_degrades_serial(self, stored, reader):
        _, serial = stored
        with ProcessTransformPool(reader, workers=2, inline_threshold=None) as pool:
            # Simulate a fleet that could never be (re)spawned.
            handles, pool._handles = pool._handles, []
            try:
                result = pool.transform_many([("doc", GUARD)])[0]
            finally:
                pool._handles = handles
        assert result.xml() == serial[GUARD]
        assert reader.stats.events.get("serve.degraded_serial", 0) >= 1

    def test_make_pool_dispatch(self, reader):
        with make_pool(reader, workers=2, mode="process") as pool:
            assert isinstance(pool, ProcessTransformPool)
            assert pool.mode == "process"
        with make_pool(reader, workers=2, mode="thread") as pool:
            assert isinstance(pool, TransformPool)
        with pytest.raises(ValueError, match="unknown pool mode"):
            make_pool(reader, mode="greenlet")


class TestCrashRecovery:
    def test_sigkill_mid_service_respawns_and_loses_nothing(self, stored, reader):
        _, serial = stored
        requests = [("doc", GUARD)] * 8
        with ProcessTransformPool(reader, workers=2, inline_threshold=None) as pool:
            pool.transform_many([("doc", GUARD)])  # all pipes proven live
            futures = [pool.submit("doc", GUARD) for _ in range(len(requests))]
            # SIGKILL is uncatchable: whatever each worker was doing
            # dies with it, in-flight request included.
            for handle in pool._handles:
                os.kill(handle.process.pid, signal.SIGKILL)
            results = [f.result(timeout=60) for f in futures]
            assert len(results) == len(requests)  # none lost, none duplicated
            assert all(r.xml() == serial[GUARD] for r in results)
            assert reader.stats.events.get("serve.worker_restarts", 0) >= 1
            # The replacement fleet keeps serving.
            again = pool.transform_many([("doc", GUARD)])
            assert again[0].xml() == serial[GUARD]

    def test_respawned_worker_is_rewarmed(self, reader):
        with ProcessTransformPool(
            reader, workers=1, inline_threshold=None, warm=[("doc", GUARD)]
        ) as pool:
            stats = pool.worker_stats()
            assert stats and stats[0]["plan_cache"]["entries"] >= 1
            os.kill(pool._handles[0].process.pid, signal.SIGKILL)
            pool.transform_many([("doc", GUARD)])  # triggers respawn
            stats = pool.worker_stats()
            # The replacement pre-compiled the warm list before traffic.
            assert stats and stats[0]["plan_cache"]["entries"] >= 1


class TestDeadlines:
    def test_expired_budget_raises_xm540(self, reader):
        with ProcessTransformPool(reader, workers=1, inline_threshold=None) as pool:
            future = pool.submit("doc", GUARD, deadline=1e-9)
            with pytest.raises(TransformTimeoutError) as excinfo:
                future.result(timeout=30)
            assert excinfo.value.code == "XM540"
        assert reader.stats.events.get("serve.timeouts", 0) >= 1

    def test_stalled_worker_times_out_collector(self, stored, reader):
        _, serial = stored
        with ProcessTransformPool(reader, workers=1, inline_threshold=None) as pool:
            pool.transform_many([("doc", GUARD)])  # pipe proven live
            pid = pool._handles[0].process.pid
            os.kill(pid, signal.SIGSTOP)
            try:
                with pytest.raises(TransformTimeoutError) as excinfo:
                    pool.transform_many([("doc", GUARD)], deadline=0.3)
                assert excinfo.value.code == "XM540"
            finally:
                os.kill(pid, signal.SIGCONT)
            # The worker was only stopped, not killed: once resumed it
            # answers the stale request, the pool discards it (the
            # future was abandoned), and fresh requests still work.
            result = pool.transform_many([("doc", GUARD)], deadline=30)
            assert result[0].xml() == serial[GUARD]


class TestTelemetry:
    def test_worker_traces_merge_into_parent_sinks(self, stored, tmp_path):
        path, _ = stored
        db = Database(path, mode="r", durable=False)
        trace_file = str(tmp_path / "traces.jsonl")
        telemetry = ServeTelemetry(
            stats=db.stats, trace_sample=1, trace_file=trace_file
        )
        try:
            with ProcessTransformPool(
                db, workers=1, inline_threshold=None, telemetry=telemetry
            ) as pool:
                pool.transform_many([("doc", GUARD)] * 2)
            assert telemetry.sampled_traces >= 2
            with open(trace_file, encoding="utf-8") as handle:
                text = handle.read()
            assert '"worker": true' in text
            # Latency histograms got the workers' samples.
            snapshot = db.stats.timing_snapshot()
            assert snapshot["serve.request_seconds"].count >= 2
            assert snapshot["serve.execute_seconds"].count >= 2
        finally:
            db.close()

    def test_remote_plan_cache_outcome_reported(self, stored):
        path, _ = stored
        db = Database(path, mode="r", durable=False)
        telemetry = ServeTelemetry(stats=db.stats, slow_ms=0.0)
        try:
            with ProcessTransformPool(
                db, workers=1, inline_threshold=None, telemetry=telemetry
            ) as pool:
                first = pool.submit("doc", GUARD)
                first.result(timeout=30)
                second = pool.submit("doc", GUARD)
                second.result(timeout=30)
            # Same worker, same guard: the second request hit the
            # worker's private plan cache, and said so over the pipe.
            assert second.xmorph_trace.plan_cache_hit is True
        finally:
            db.close()


class TestResultSurface:
    def test_remote_result_refuses_reindent(self):
        result = RemoteTransformResult("doc", GUARD, "<a/>")
        assert result.xml() == "<a/>"
        with pytest.raises(ValueError, match="pre-serialized"):
            result.xml(indent=2)

    def test_pool_stats_surface(self, reader):
        with ProcessTransformPool(reader, workers=2, inline_threshold=None) as pool:
            pool.transform_many([("doc", GUARD)])
            stats = pool.stats()
            assert stats["requests"] >= 1
            assert stats["completed"] >= 1
            assert pool.pending == 0
