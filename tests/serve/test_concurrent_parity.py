"""Property-based concurrency suite: parallel serving changes *nothing*.

The contract of :class:`repro.serve.TransformPool` is that running N
transforms on 8 threads over one shared database handle produces output
byte-identical to running them one at a time on the caller's thread —
same plan cache, same join memos, same buffer pool, no interleaving
visible in the results.  This suite pins that with Hypothesis-generated
random forests (200+ examples across the two properties) and with the
shipped ``examples/guards/`` corpus, for both the batch renderer
(:meth:`TransformPool.transform_many`) and the streaming renderer
(:meth:`TransformPool.stream_many`).

Every example builds a fresh throwaway store: parity must hold from a
cold cache (the first parallel batch races the single-flight compile)
and from a warm one (the second batch is all cache hits).
"""

import os
import tempfile
from contextlib import contextmanager
from io import StringIO

import pytest
from hypothesis import HealthCheck, given, settings

from repro.serve import TransformPool
from repro.storage import Database

from tests.strategies import documents

GUARD_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples", "guards")

#: TYPE-FILL'd guards apply to *any* forest over the a-d tag alphabet:
#: missing labels synthesize placeholders instead of raising, so every
#: generated document exercises the full compile-and-render path.
FUZZ_GUARDS = [
    "CAST (TYPE-FILL MORPH a [ b ])",
    "CAST (TYPE-FILL MORPH b [ c [ d ] ])",
    "CAST (TYPE-FILL MORPH d [ a c ])",
]

WORKERS = 8
#: Repetitions per guard in a batch — enough that several workers race
#: the same (guard, fingerprint) key through the single-flight door.
REPS = 3


@contextmanager
def throwaway_db(forest):
    with tempfile.TemporaryDirectory(prefix="xmorph-parity-") as scratch:
        db = Database(os.path.join(scratch, "t.db"), durable=False)
        try:
            db.store_document("doc", forest)
            yield db
        finally:
            db.close()


def corpus_guards() -> list[str]:
    guards = []
    for entry in sorted(os.listdir(GUARD_DIR)):
        if not entry.endswith(".guard"):
            continue
        with open(os.path.join(GUARD_DIR, entry), encoding="utf-8") as handle:
            guards.append(
                " ".join(
                    line.strip()
                    for line in handle
                    if line.strip() and not line.lstrip().startswith("#")
                )
            )
    return guards


class TestFuzzedParity:
    """Random forests: 8-way parallel output == serial output, bytewise."""

    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(documents(max_depth=3, max_children=3))
    def test_batch_parity(self, forest):
        requests = [("doc", guard) for guard in FUZZ_GUARDS for _ in range(REPS)]
        with throwaway_db(forest) as db:
            serial = {guard: db.transform("doc", guard).xml() for guard in FUZZ_GUARDS}
            results = db.transform_many(requests, workers=WORKERS)
            assert len(results) == len(requests)
            for (_name, guard), result in zip(requests, results):
                assert result.xml() == serial[guard], (
                    f"parallel batch output diverged from serial for {guard!r}"
                )

    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(documents(max_depth=3, max_children=3))
    def test_stream_parity(self, forest):
        requests = [("doc", guard) for guard in FUZZ_GUARDS for _ in range(REPS)]
        with throwaway_db(forest) as db:
            serial = {}
            for guard in FUZZ_GUARDS:
                sink = StringIO()
                db.stream_transform("doc", guard, sink)
                serial[guard] = sink.getvalue()
            with TransformPool(db, workers=WORKERS) as pool:
                streamed = pool.stream_many(requests)
            for (_name, guard), text in zip(requests, streamed):
                assert text == serial[guard], (
                    f"parallel stream output diverged from serial for {guard!r}"
                )


class TestCorpusParity:
    """Every shipped example guard over books.xml, served 8-wide."""

    @pytest.fixture(scope="class")
    def books_db(self, tmp_path_factory):
        scratch = tmp_path_factory.mktemp("parity-corpus")
        db = Database(str(scratch / "books.db"), durable=False)
        with open(os.path.join(GUARD_DIR, "books.xml"), encoding="utf-8") as handle:
            db.store_document("books", handle.read())
        yield db
        db.close()

    def test_corpus_batch_parity(self, books_db):
        guards = corpus_guards()
        assert guards, "the examples/guards corpus is missing"
        serial = {g: books_db.transform("books", g).xml() for g in guards}
        requests = [("books", g) for g in guards for _ in range(4)]
        results = books_db.transform_many(requests, workers=WORKERS)
        for (_name, guard), result in zip(requests, results):
            assert result.xml() == serial[guard]

    def test_corpus_stream_parity(self, books_db):
        guards = corpus_guards()
        serial = {}
        for guard in guards:
            sink = StringIO()
            books_db.stream_transform("books", guard, sink)
            serial[guard] = sink.getvalue()
        requests = [("books", g) for g in guards for _ in range(4)]
        with TransformPool(books_db, workers=WORKERS) as pool:
            streamed = pool.stream_many(requests)
        for (_name, guard), text in zip(requests, streamed):
            assert text == serial[guard]

    def test_mixed_batch_and_stream_interleaved(self, books_db):
        """Batch and stream requests racing on one pool still agree."""
        guard = "MORPH author [ name book [ title ] ]"
        batch_serial = books_db.transform("books", guard).xml()
        sink = StringIO()
        books_db.stream_transform("books", guard, sink)
        stream_serial = sink.getvalue()
        with TransformPool(books_db, workers=WORKERS) as pool:
            futures = [
                pool.submit("books", guard, stream=bool(i % 2)) for i in range(32)
            ]
            for i, future in enumerate(futures):
                result = future.result(timeout=60)
                if i % 2:
                    assert result == stream_serial
                else:
                    assert result.xml() == batch_serial

    def test_counters_accumulate(self, books_db):
        before = dict(books_db.stats.events)
        books_db.transform_many([("books", "MORPH author [ name ]")] * 6, workers=4)
        events = books_db.stats.events
        assert events.get("serve.requests", 0) - before.get("serve.requests", 0) == 6
        assert events.get("serve.completed", 0) - before.get("serve.completed", 0) == 6


@contextmanager
def throwaway_reader(forest):
    """A store written then reopened read-only (the process pool's diet)."""
    with tempfile.TemporaryDirectory(prefix="xmorph-parity-") as scratch:
        path = os.path.join(scratch, "t.db")
        with Database(path, durable=False) as writer:
            writer.store_document("doc", forest)
        db = Database(path, mode="r", durable=False)
        try:
            yield db
        finally:
            db.close()


class TestProcessModeParity:
    """Forked workers over mmap snapshots change nothing, bytewise.

    Fewer examples than the thread-pool properties (each one forks a
    fleet), but the same contract: serial, thread-pool and process-pool
    rendering of Hypothesis-generated forests are byte-identical.
    ``inline_threshold=None`` forces every request across the pipe —
    cost routing must never be what makes parity hold.
    """

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(documents(max_depth=3, max_children=3))
    def test_process_batch_parity(self, forest):
        from repro.serve import ProcessTransformPool

        requests = [("doc", guard) for guard in FUZZ_GUARDS for _ in range(REPS)]
        with throwaway_reader(forest) as db:
            serial = {guard: db.transform("doc", guard).xml() for guard in FUZZ_GUARDS}
            with ProcessTransformPool(
                db, workers=2, inline_threshold=None, max_queue=len(requests)
            ) as pool:
                results = pool.transform_many(requests)
            assert len(results) == len(requests)
            for (_name, guard), result in zip(requests, results):
                assert result.xml() == serial[guard], (
                    f"process-pool output diverged from serial for {guard!r}"
                )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(documents(max_depth=3, max_children=3))
    def test_process_stream_parity(self, forest):
        from repro.serve import ProcessTransformPool

        requests = [("doc", guard) for guard in FUZZ_GUARDS for _ in range(REPS)]
        with throwaway_reader(forest) as db:
            serial = {}
            for guard in FUZZ_GUARDS:
                sink = StringIO()
                db.stream_transform("doc", guard, sink)
                serial[guard] = sink.getvalue()
            with ProcessTransformPool(
                db, workers=2, inline_threshold=None, max_queue=len(requests)
            ) as pool:
                streamed = pool.stream_many(requests)
            for (_name, guard), text in zip(requests, streamed):
                assert text == serial[guard], (
                    f"process-pool stream diverged from serial for {guard!r}"
                )
