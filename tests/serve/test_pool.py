"""TransformPool lifecycle: deadlines, degradation, and the serve loop."""

import io
import json
import socket
import threading
import time

import pytest

from repro.errors import TransformTimeoutError
from repro.serve import ServeStats, TransformPool, serve_forever, serve_loop
from repro.storage import Database

from tests.conftest import FIG1A

GUARD = "MORPH author [ name ]"


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "pool.db"), durable=False)
    database.store_document("doc", FIG1A)
    yield database
    database.close()


def _slow_transform(db, gate: threading.Event, slow_guard: str):
    """Patch ``db.transform`` so one sentinel guard blocks on ``gate``."""
    real = db.transform

    def patched(name, guard):
        if guard == slow_guard:
            gate.wait(timeout=30)
        return real(name, GUARD)

    db.transform = patched
    return real


class TestDeadlines:
    def test_timeout_raises_coded_error(self, db):
        gate = threading.Event()
        _slow_transform(db, gate, slow_guard="SLOW")
        try:
            with TransformPool(db, workers=2) as pool:
                with pytest.raises(TransformTimeoutError) as excinfo:
                    pool.transform_many([("doc", "SLOW")], deadline=0.05)
                assert excinfo.value.code == "XM540"
                assert "SLOW" in str(excinfo.value)
                assert db.stats.events.get("serve.timeouts") == 1
                gate.set()  # let the stuck worker finish before shutdown
        finally:
            gate.set()

    def test_pool_default_deadline(self, db):
        gate = threading.Event()
        _slow_transform(db, gate, slow_guard="SLOW")
        try:
            with TransformPool(db, workers=2, deadline=0.05) as pool:
                with pytest.raises(TransformTimeoutError):
                    pool.transform_many([("doc", "SLOW")])
                gate.set()
        finally:
            gate.set()

    def test_no_deadline_waits(self, db):
        with TransformPool(db, workers=2) as pool:
            results = pool.transform_many([("doc", GUARD)] * 4)
        serial = db.transform("doc", GUARD).xml()
        assert [r.xml() for r in results] == [serial] * 4


class TestDegradation:
    def test_saturated_queue_runs_inline(self, db):
        gate = threading.Event()
        _slow_transform(db, gate, slow_guard="SLOW")
        try:
            with TransformPool(db, workers=2, max_queue=2) as pool:
                stuck = [pool.submit("doc", "SLOW") for _ in range(2)]
                while pool.pending < 2:  # both workers parked on the gate
                    time.sleep(0.01)
                # The queue is full: this submission must complete
                # inline on the calling thread, not wait for a worker.
                fast = pool.submit("doc", GUARD)
                assert fast.done()
                assert db.stats.events.get("serve.degraded_serial") == 1
                gate.set()
                for future in stuck:
                    future.result(timeout=30)
        finally:
            gate.set()

    def test_serial_pool_is_not_degradation(self, db):
        with TransformPool(db, workers=1) as pool:
            future = pool.submit("doc", GUARD)
            assert future.done()  # workers=1 runs inline by construction
        assert "serve.degraded_serial" not in db.stats.events

    def test_workers_clamped_to_one(self, db):
        with TransformPool(db, workers=0) as pool:
            assert pool.workers == 1
            assert pool.submit("doc", GUARD).done()

    def test_error_counted_and_raised(self, db):
        with TransformPool(db, workers=2) as pool:
            future = pool.submit("doc", "MORPH nosuchlabel [ x ]")
            with pytest.raises(Exception):
                future.result(timeout=30)
        assert db.stats.events.get("serve.errors") == 1

    def test_stats_strips_prefix(self, db):
        with TransformPool(db, workers=2) as pool:
            pool.transform_many([("doc", GUARD)] * 3)
            stats = pool.stats()
        assert stats["requests"] == 3
        assert stats["completed"] == 3


class TestServeLoop:
    def _run(self, db, lines, **kwargs):
        out = io.StringIO()
        stats = serve_loop(db, io.StringIO("\n".join(lines) + "\n"), out, **kwargs)
        return stats, [json.loads(line) for line in out.getvalue().splitlines()]

    def test_request_response_in_order(self, db):
        lines = [
            json.dumps({"id": i, "doc": "doc", "guard": GUARD}) for i in range(10)
        ]
        stats, responses = self._run(db, lines, workers=4)
        assert [r["id"] for r in responses] == list(range(10))
        assert all(r["ok"] for r in responses)
        serial = db.transform("doc", GUARD).xml()
        assert all(r["xml"] == serial for r in responses)
        assert stats.requests == 10 and stats.ok == 10 and stats.errors == 0

    def test_stream_request(self, db):
        lines = [json.dumps({"id": 1, "doc": "doc", "guard": GUARD, "stream": True})]
        _, responses = self._run(db, lines, workers=2)
        sink = io.StringIO()
        db.stream_transform("doc", GUARD, sink)
        assert responses[0]["xml"] == sink.getvalue()

    def test_bad_json_is_a_response_not_a_crash(self, db):
        lines = [
            "this is not json",
            json.dumps({"id": 2, "doc": "doc", "guard": GUARD}),
        ]
        stats, responses = self._run(db, lines, workers=2)
        assert responses[0] == {"id": None, "ok": False, "error": "bad JSON line"}
        assert responses[1]["ok"]
        assert stats.errors == 1 and stats.ok == 1

    def test_malformed_request_reports_missing_fields(self, db):
        lines = [json.dumps({"id": 7, "doc": "doc"})]
        _, responses = self._run(db, lines, workers=2)
        assert responses[0]["id"] == 7
        assert not responses[0]["ok"]
        assert "guard" in responses[0]["error"]

    def test_transform_error_carries_message(self, db):
        lines = [json.dumps({"id": 1, "doc": "doc", "guard": "MORPH zzz [ q ]"})]
        stats, responses = self._run(db, lines, workers=2)
        assert not responses[0]["ok"]
        assert "zzz" in responses[0]["error"]
        assert stats.errors == 1

    def test_stats_command_drains_first(self, db):
        lines = [
            json.dumps({"id": 1, "doc": "doc", "guard": GUARD}),
            json.dumps({"cmd": "stats"}),
        ]
        _, responses = self._run(db, lines, workers=2)
        assert responses[0]["id"] == 1  # the pending response came first
        assert responses[1]["ok"] and responses[1]["stats"]["completed"] >= 1

    def test_quit_stops_reading(self, db):
        lines = [
            json.dumps({"cmd": "quit"}),
            json.dumps({"id": 9, "doc": "doc", "guard": GUARD}),
        ]
        stats, responses = self._run(db, lines, workers=2)
        assert responses == []
        assert stats.requests == 0
        assert isinstance(stats, ServeStats)


class TestServeForever:
    def test_tcp_round_trip(self, db):
        server = serve_forever(db, port=0, workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address
            with socket.create_connection((host, port), timeout=10) as conn:
                conn.sendall(
                    (json.dumps({"id": 1, "doc": "doc", "guard": GUARD}) + "\n").encode()
                )
                with conn.makefile("r", encoding="utf-8") as reader:
                    response = json.loads(reader.readline())
                conn.sendall((json.dumps({"cmd": "quit"}) + "\n").encode())
            assert response["id"] == 1 and response["ok"]
            assert response["xml"] == db.transform("doc", GUARD).xml()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestDegradedInlineDeadlines:
    """The inline (degraded-serial / workers=1) path keeps the pool's
    deadline contract and histogram coverage — degraded requests never
    silently vanish from the p95s or outlive their budget."""

    def test_inline_overrun_raises_xm540(self, db):
        real = db.transform

        def slow(name, guard):
            time.sleep(0.05)
            return real(name, GUARD)

        db.transform = slow
        with TransformPool(db, workers=1) as pool:
            future = pool.submit("doc", GUARD, deadline=0.001)
            with pytest.raises(TransformTimeoutError) as excinfo:
                future.result()
            assert excinfo.value.code == "XM540"
        assert db.stats.events.get("serve.timeouts") == 1
        assert db.stats.events.get("serve.errors.XM540") == 1

    def test_inline_under_deadline_returns_result(self, db):
        with TransformPool(db, workers=1, deadline=30) as pool:
            assert pool.submit("doc", GUARD).result().xml()
        assert "serve.timeouts" not in db.stats.events

    def test_saturated_inline_records_histograms(self, db):
        from repro.serve import ServeTelemetry

        telemetry = ServeTelemetry(stats=db.stats)
        gate = threading.Event()
        _slow_transform(db, gate, slow_guard="SLOW")
        try:
            with TransformPool(
                db, workers=2, max_queue=2, telemetry=telemetry
            ) as pool:
                stuck = [pool.submit("doc", "SLOW") for _ in range(2)]
                while pool.pending < 2:
                    time.sleep(0.01)
                snapshot = db.stats.timing_snapshot()
                before = (
                    snapshot["serve.request_seconds"].count
                    if "serve.request_seconds" in snapshot
                    else 0
                )
                fast = pool.submit("doc", GUARD)
                assert fast.done()
                assert fast.xmorph_trace.degraded
                after = db.stats.timing_snapshot()
                # The degraded request's phases landed in the same
                # histograms the threaded path feeds, immediately.
                assert after["serve.request_seconds"].count == before + 1
                assert after["serve.execute_seconds"].count >= before + 1
                gate.set()
                for future in stuck:
                    future.result(timeout=30)
        finally:
            gate.set()
