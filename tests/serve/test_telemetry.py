"""Request-scoped serving telemetry: traces, sampling, slow log, metrics."""

import io
import json

import pytest

from repro.serve import (
    RequestTrace,
    ServeTelemetry,
    TransformPool,
    serve_loop,
)
from repro.serve.telemetry import guard_fingerprint
from repro.storage import Database

from tests.conftest import FIG1A

GUARD = "MORPH author [ name ]"


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "telemetry.db"), durable=False)
    database.store_document("doc", FIG1A)
    yield database
    database.close()


class TestRequestTrace:
    def test_phase_timings_accumulate(self):
        trace = RequestTrace(doc="doc", guard=GUARD, trace_id="abc")
        trace.begin()
        trace.end_execute()
        trace.serialize_seconds = 0.25
        assert trace.queue_seconds >= 0.0
        assert trace.execute_seconds >= 0.0
        assert trace.total_seconds >= 0.25
        timings = trace.timings_ms()
        assert timings["serialize_ms"] == 250.0
        assert timings["total_ms"] >= timings["serialize_ms"]

    def test_fail_records_status_and_code(self):
        from repro.errors import TransformTimeoutError

        trace = RequestTrace(doc="doc", guard=GUARD, trace_id="abc")
        trace.fail(TransformTimeoutError("doc", GUARD, 0.1))
        assert trace.status == "error"
        assert trace.code == "XM540"
        assert trace.error == "TransformTimeoutError"

    def test_never_started_reports_zero_phases(self):
        trace = RequestTrace(doc="doc", guard=GUARD, trace_id="abc")
        assert trace.queue_seconds == 0.0
        assert trace.execute_seconds == 0.0


class TestSampling:
    def test_sample_every_other_request(self, db):
        telemetry = ServeTelemetry(stats=db.stats, trace_sample=2)
        sampled = [telemetry.start("doc", GUARD).sampled for _ in range(6)]
        assert sampled == [False, True, False, True, False, True]

    def test_sample_rate_zero_creates_no_tracer(self, db):
        telemetry = ServeTelemetry(stats=db.stats)
        trace = telemetry.start("doc", GUARD)
        assert trace.tracer is None
        assert not trace.sampled

    def test_slow_ms_gives_every_request_a_tracer(self, db):
        telemetry = ServeTelemetry(stats=db.stats, slow_ms=100.0)
        trace = telemetry.start("doc", GUARD)
        assert trace.tracer is not None
        assert not trace.sampled  # a tracer for plan-cache hit detection only

    def test_finish_is_idempotent(self, db):
        telemetry = ServeTelemetry(stats=db.stats)
        trace = telemetry.start("doc", GUARD)
        telemetry.finish(trace)
        telemetry.finish(trace)
        snapshot = db.stats.timing_snapshot()
        assert snapshot["serve.request_seconds"].count == 1


class TestSampledTraceExport:
    def test_jsonl_spans_share_the_request_trace_id(self, db, tmp_path):
        trace_file = tmp_path / "traces.jsonl"
        telemetry = ServeTelemetry(
            stats=db.stats, trace_sample=1, trace_file=str(trace_file)
        )
        with TransformPool(db, workers=2, telemetry=telemetry) as pool:
            pool.transform_many([("doc", GUARD)])
        records = [
            json.loads(line) for line in trace_file.read_text().splitlines()
        ]
        header = records[0]
        assert header["type"] == "trace"
        assert header["version"] == 2
        assert header["doc"] == "doc"
        assert header["guard_fingerprint"] == guard_fingerprint(GUARD)
        assert header["status"] == "ok"
        assert set(header["timings"]) == {
            "queue_ms", "execute_ms", "serialize_ms", "total_ms",
        }
        spans = [record for record in records if record["type"] == "span"]
        assert spans, "the sampled request must export its span tree"
        assert {record["trace_id"] for record in records} == {header["trace_id"]}
        # Pipeline spans nest under the request root.
        names = [span["name"] for span in spans]
        assert names[0] == "serve.request"
        root_id = spans[0]["id"]
        assert any(span["parent"] == root_id for span in spans[1:])

    def test_per_request_tracer_does_not_leak(self, db):
        from repro import obs

        telemetry = ServeTelemetry(stats=db.stats, trace_sample=1)
        outer = obs.Tracer()
        with obs.tracing(outer):
            with TransformPool(db, workers=2, telemetry=telemetry) as pool:
                pool.transform_many([("doc", GUARD)])
            # The worker installed the per-request tracer inside a copied
            # context; the submitting thread still sees the outer tracer.
            assert obs.get_tracer() is outer


class TestSlowQueryLog:
    def test_slow_request_logged_with_plan_cache_and_fingerprint(self, db, tmp_path):
        slow_log = tmp_path / "slow.jsonl"
        telemetry = ServeTelemetry(
            stats=db.stats, slow_ms=0.0, slow_log=str(slow_log)
        )
        # Serial pool so the first request deterministically compiles
        # (miss) and the second hits the plan cache.
        with TransformPool(db, workers=1, telemetry=telemetry) as pool:
            pool.transform_many([("doc", GUARD), ("doc", GUARD)])
        records = [json.loads(line) for line in slow_log.read_text().splitlines()]
        assert len(records) == 2
        first, second = records
        assert first["guard_fingerprint"] == guard_fingerprint(GUARD)
        assert first["status"] == "ok"
        assert first["plan_cache"] == "miss"
        assert second["plan_cache"] == "hit"
        assert first["timings"]["total_ms"] >= 0.0
        assert first["trace_id"] != second["trace_id"]
        assert db.stats.events["serve.slow_queries"] == 2

    def test_failed_request_carries_error_and_code(self, db, tmp_path):
        slow_log = tmp_path / "slow.jsonl"
        telemetry = ServeTelemetry(
            stats=db.stats, slow_ms=0.0, slow_log=str(slow_log)
        )
        with TransformPool(db, workers=1, telemetry=telemetry) as pool:
            with pytest.raises(Exception):
                pool.transform_many([("doc", "MORPH [[[")])
        records = [json.loads(line) for line in slow_log.read_text().splitlines()]
        assert records[0]["status"] == "error"
        assert "error" in records[0]

    def test_fast_threshold_skips_fast_requests(self, db, tmp_path):
        slow_log = tmp_path / "slow.jsonl"
        telemetry = ServeTelemetry(
            stats=db.stats, slow_ms=60_000.0, slow_log=str(slow_log)
        )
        with TransformPool(db, workers=2, telemetry=telemetry) as pool:
            pool.transform_many([("doc", GUARD)])
        assert not slow_log.exists()


class TestErrorCounters:
    def test_uncoded_error_counter(self, db):
        with TransformPool(db, workers=1) as pool:
            with pytest.raises(Exception):
                pool.transform_many([("doc", "MORPH [[[")])
        assert db.stats.events["serve.errors"] == 1
        assert db.stats.events["serve.errors.uncoded"] == 1

    def test_timeout_counts_xm540(self, db):
        import threading

        gate = threading.Event()
        real = db.transform

        def patched(name, guard):
            if guard == "SLOW":
                gate.wait(timeout=30)
            return real(name, GUARD)

        db.transform = patched
        try:
            with TransformPool(db, workers=2) as pool:
                with pytest.raises(Exception):
                    pool.transform_many([("doc", "SLOW")], deadline=0.05)
        finally:
            gate.set()
            db.transform = real
        assert db.stats.events["serve.timeouts"] == 1
        assert db.stats.events["serve.errors.XM540"] == 1


class TestMetricsEndpoint:
    def test_metrics_cmd_returns_prometheus_text(self, db):
        requests = "\n".join(
            [
                json.dumps({"id": 1, "doc": "doc", "guard": GUARD}),
                json.dumps({"cmd": "metrics"}),
                json.dumps({"cmd": "quit"}),
            ]
        )
        out = io.StringIO()
        serve_loop(db, io.StringIO(requests + "\n"), out, workers=2)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert responses[0]["ok"] is True
        prometheus = responses[1]["prometheus"]
        assert "xmorph_serve_requests_total 1" in prometheus
        assert "xmorph_serve_request_seconds_bucket" in prometheus
        assert 'le="+Inf"' in prometheus

    def test_http_get_metrics_on_the_line_protocol(self, db):
        requests = "GET /metrics HTTP/1.1\n"
        out = io.StringIO()
        serve_loop(db, io.StringIO(requests), out, workers=2)
        response = out.getvalue()
        assert response.startswith("HTTP/1.0 200 OK\r\n")
        assert "Content-Type: text/plain; version=0.0.4" in response
        body = response.split("\r\n\r\n", 1)[1]
        assert "xmorph_storage_blocks_read_total" in body

    def test_http_unknown_path_is_404(self, db):
        out = io.StringIO()
        serve_loop(db, io.StringIO("GET /nope HTTP/1.1\n"), out, workers=2)
        assert out.getvalue().startswith("HTTP/1.0 404 Not Found\r\n")

    def test_default_loop_records_latency_histograms(self, db):
        requests = "\n".join(
            [
                json.dumps({"id": 1, "doc": "doc", "guard": GUARD}),
                json.dumps({"cmd": "quit"}),
            ]
        )
        serve_loop(db, io.StringIO(requests + "\n"), io.StringIO(), workers=2)
        snapshot = db.stats.timing_snapshot()
        for name in (
            "serve.request_seconds",
            "serve.queue_seconds",
            "serve.execute_seconds",
            "serve.serialize_seconds",
        ):
            assert snapshot[name].count == 1, name
        histogram = snapshot["serve.request_seconds"]
        assert histogram.p50 <= histogram.p95 <= (histogram.maximum or 0.0)
