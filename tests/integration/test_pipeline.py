"""Cross-module integration: realistic end-to-end pipelines."""

import pytest

import repro
from repro.baseline import ExistStore
from repro.engine.inference import infer_guard
from repro.engine.materialize import MaterializedTransform
from repro.engine.stream import render_to_string
from repro.storage import Database
from repro.workloads import generate_dblp, generate_nasa, generate_xmark
from repro.xmltree import parse_forest


class TestStoreGuardQueryPipeline:
    """Shred → guard-transform → query, all over the storage engine."""

    def test_dblp_author_statistics(self, tmp_path):
        with Database(str(tmp_path / "p.db")) as db:
            db.store_document("dblp", generate_dblp(300))
            result = db.transform("dblp", "CAST MORPH author [ title [ year ] ]")
            context = repro.QueryContext.for_forest(result.forest)
            counts = repro.evaluate("count(/author)", context)
            assert counts[0] > 300  # multi-author records multiply authors
            years = repro.evaluate("distinct-values(//year)", context)
            assert years and all(1970 <= float(y) <= 2011 for y in years)

    def test_same_guard_memory_and_store_agree(self, tmp_path):
        forest = generate_nasa(40)
        guard = "CAST MORPH dataset [ title keyword ]"
        memory = repro.transform(forest, guard)
        with Database(str(tmp_path / "n.db")) as db:
            db.store_document("nasa", forest)
            stored = db.transform("nasa", guard)
        assert stored.forest.canonical() == memory.forest.canonical()

    def test_streamed_render_over_store(self, tmp_path):
        forest = generate_dblp(150)
        with Database(str(tmp_path / "s.db")) as db:
            db.store_document("dblp", forest)
            index = db.index("dblp")
            compiled = db.compile("dblp", "CAST MORPH author [ title ]")
            streamed = render_to_string(compiled.target_shape, index)
            batch = db.transform("dblp", "CAST MORPH author [ title ]")
            assert parse_forest(streamed).canonical() == batch.forest.canonical()


class TestInferThenGuard:
    """A query arrives, the guard is inferred, and the pair runs anywhere."""

    def test_inferred_guard_protects_query_across_shapes(self, fig1a, fig1b, fig1c):
        query = "for $a in /data/author return $a/book/title/text()"
        guard = infer_guard(query).guard
        guarded = repro.GuardedQuery(guard, query)
        answers = [sorted(guarded.run(forest).items) for forest in (fig1a, fig1b, fig1c)]
        assert answers == [["X", "Y"]] * 3

    def test_inferred_guard_on_xmark(self):
        forest = generate_xmark(0.001)
        query = "for $p in /site/people/person return $p/name/text()"
        inferred = infer_guard(query)
        guarded = repro.GuardedQuery(f"CAST ({inferred.guard})", query)
        outcome = guarded.run(forest)
        assert len(outcome.items) > 0


class TestMaterializedOverWorkloads:
    def test_updates_against_generated_data(self):
        forest = generate_dblp(80)
        view = MaterializedTransform(forest, "CAST MORPH author [ title ]")
        title = forest.find_named("title")[0]
        affected = view.update_text(title, "Rewritten Title.")
        assert affected
        assert "Rewritten Title." in view.xml()


class TestBaselineAgreement:
    """Both engines must return the same data, whatever the cost."""

    def test_exist_query_matches_guarded_transform(self, tmp_path):
        forest = generate_dblp(120)
        with ExistStore(str(tmp_path / "e.db")) as exist:
            exist.store_document("dblp", forest)
            exist_names = sorted(
                repro.serialize(n) if hasattr(n, "name") else str(n)
                for n in exist.query("dblp", "//author")
            )
        xmorph = repro.transform(forest, "CAST MORPH author")
        xmorph_names = sorted(repro.serialize(root) for root in xmorph.forest.roots)
        assert exist_names == xmorph_names

    def test_exist_dump_equals_database_reconstruction(self, tmp_path):
        forest = generate_nasa(25)
        with ExistStore(str(tmp_path / "e2.db")) as exist:
            exist.store_document("nasa", forest)
            dumped = parse_forest(exist.dump("nasa"))
        with Database(str(tmp_path / "d2.db")) as db:
            db.store_document("nasa", forest)
            reconstructed = db.load_forest("nasa")
        assert dumped.canonical() == reconstructed.canonical()


class TestComposedGuardChains:
    def test_three_stage_pipeline(self, fig1a):
        result = repro.transform(
            fig1a,
            "MORPH author [ name book [ title ] ] "
            "| TRANSLATE author -> writer "
            "| MUTATE (DROP name)",
        )
        roots = {r.name for r in result.forest.roots}
        assert roots == {"writer"}
        names = result.forest.find_named("name")
        assert not names

    def test_guard_composes_with_restrict(self, fig1a):
        result = repro.transform(
            fig1a,
            "CAST MORPH (RESTRICT publisher [ name ]) [ book.title ]",
        )
        for publisher in result.forest.roots:
            assert publisher.name == "publisher"
            assert publisher.find("title") is not None
