"""XMark-flavoured guarded queries over the generated auction data.

The point of query guards is making realistic queries shape-proof;
these tests run XMark-benchmark-style queries behind guards, against
both the in-memory engine and the storage engine.
"""

import pytest

import repro
from repro.storage import Database
from repro.workloads import generate_xmark


@pytest.fixture(scope="module")
def auction():
    return generate_xmark(0.002)


@pytest.fixture(scope="module")
def auction_db(tmp_path_factory, auction):
    db = Database(str(tmp_path_factory.mktemp("xm") / "x.db"))
    db.store_document("xmark", auction)
    yield db
    db.close()


class TestXMarkStyleQueries:
    def test_q1_style_person_lookup(self, auction):
        """XMark Q1: the name of a given person."""
        guarded = repro.GuardedQuery(
            "CAST MORPH person [ id name ]",
            "for $p in /person where $p/@id = 'person0' return $p/name/text()",
        )
        outcome = guarded.run(auction)
        assert len(outcome.items) == 1

    def test_q6_style_count_items(self, auction):
        """XMark Q6: how many items are listed in all regions."""
        guarded = repro.GuardedQuery(
            "CAST MORPH item",
            "count(/item)",
        )
        outcome = guarded.run(auction)
        assert outcome.items[0] > 0

    def test_price_aggregation(self, auction):
        guarded = repro.GuardedQuery(
            "CAST MORPH closed_auction [ price ]",
            "avg(/closed_auction/price)",
        )
        outcome = guarded.run(auction)
        assert 0 < outcome.items[0] < 700

    def test_join_shape_auction_with_annotation_author(self, auction):
        # Rearranged shape: annotation authors directly under auctions.
        guarded = repro.GuardedQuery(
            "CAST MORPH open_auction [ current annotation [ author ] ]",
            "for $a in /open_auction where number($a/current) > 100 "
            "return count($a/annotation/author)",
        )
        outcome = guarded.run(auction)
        assert outcome.items  # some auctions above 100

    def test_people_report_sorted(self, auction):
        guarded = repro.GuardedQuery(
            "CAST MORPH person [ name age ]",
            "for $p in /person where exists($p/age) "
            "order by number($p/age) descending return $p/age/text()",
        )
        outcome = guarded.run(auction)
        ages = [float(age) for age in outcome.items]
        assert ages == sorted(ages, reverse=True)

    def test_same_query_over_store(self, auction_db, auction):
        result = auction_db.transform("xmark", "CAST MORPH item [ name quantity ]")
        stored_count = len(result.forest.roots)
        memory = repro.transform(auction, "CAST MORPH item [ name quantity ]")
        assert stored_count == len(memory.forest.roots)

    def test_mailbox_flatten(self, auction):
        # Flatten deeply nested mail out of items.
        guarded = repro.GuardedQuery(
            "CAST MORPH mail [ from to date ]",
            "count(/mail)",
        )
        outcome = guarded.run(auction)
        assert outcome.items[0] >= 0

    def test_category_graph_attributes(self, auction):
        guarded = repro.GuardedQuery(
            "CAST MORPH edge [ from to ]",
            "for $e in /edge return concat($e/@from, '->', $e/@to)",
        )
        outcome = guarded.run(auction)
        assert all("->" in item for item in outcome.items)
        assert outcome.items
