"""Property-based soundness of the information-loss theorems.

The core correctness claim of the paper: the *predictions* made from
path cardinalities (Theorems 1 and 2) are sound for type-complete
transformations.  Fuzzing the claim against ground truth surfaces an
important scoping fact (documented in DESIGN.md):

* **Vertex soundness holds unconditionally**: when the analysis says
  inclusive, rendering never discards a vertex.  This is the operative
  content of Theorem 1's proof ("to ensure inclusiveness, we must
  ensure V ⊆ W") and it is what protects queries from missing data.

* **Strict edge-set equality does not follow.**  The proofs *assume*
  the transform preserves closest edges between surviving vertices;
  but the closest graph **recomputed on the output document** can both
  drop and gain edges that the cardinality analysis cannot see, because
  rearrangement changes type distances between types the guard never
  mentions relative to each other.  ``test_strict_edge_divergence_*``
  pin concrete instances of both directions.

The analysis is allowed to be conservative (flagging *potential* loss
that does not materialize), so only the soundness direction is
asserted.  We fuzz with random small documents and random ``MUTATE``
guards (MUTATE is type-complete by construction).
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro
from repro.errors import LabelMismatchError, XMorphError
from repro.typing.quantify import quantify_loss

from tests.strategies import TAGS, documents


def run_quantified(forest, guard):
    """(loss report, measured quantities) or None when inapplicable."""
    try:
        report = repro.check(forest, guard)
        result = repro.transform(forest, f"CAST ({guard})")
    except LabelMismatchError:
        return None
    except XMorphError:
        return None
    return report, quantify_loss(forest, result)


class TestTheoremSoundness:
    @settings(max_examples=60, deadline=None)
    @given(
        documents(max_depth=3, max_children=3),
        st.sampled_from(TAGS),
        st.sampled_from(TAGS),
    )
    def test_mutate_pair_predictions_sound(self, forest, parent, child):
        assume(parent != child)
        outcome = run_quantified(forest, f"MUTATE {parent} [ {child} ]")
        if outcome is None:
            return
        report, measured = outcome
        if report.inclusive:
            assert measured.lost_vertices == 0, report.pretty()

    @settings(max_examples=40, deadline=None)
    @given(
        documents(max_depth=3, max_children=3),
        st.sampled_from(TAGS),
        st.sampled_from(TAGS),
        st.sampled_from(TAGS),
    )
    def test_mutate_two_children_predictions_sound(self, forest, parent, first, second):
        assume(len({parent, first, second}) == 3)
        outcome = run_quantified(forest, f"MUTATE {parent} [ {first} {second} ]")
        if outcome is None:
            return
        report, measured = outcome
        if report.inclusive:
            assert measured.lost_vertices == 0

    @settings(max_examples=40, deadline=None)
    @given(documents(max_depth=3, max_children=3))
    def test_identity_mutate_always_reversible(self, forest):
        outcome = run_quantified(forest, "MUTATE r")
        assert outcome is not None
        report, measured = outcome
        assert report.reversible
        assert measured.reversible


class TestStrictEdgeDivergence:
    """Pinned counterexamples for the module-docstring scoping fact.

    These are *features of the theorems' scope*, not bugs: vertex
    soundness holds (asserted above); strict edge-set containment on
    the recomputed output closest graph does not follow from the
    cardinality conditions.
    """

    def test_strict_edge_divergence_loss(self):
        # Moving the inner b under d changes type distances among types
        # the guard never relates, so recomputed closest edges differ
        # even though the analysis (correctly) predicts no vertex loss.
        forest = repro.parse_document("<r><b><a><d/><b/></a></b></r>")
        report = repro.check(forest, "MUTATE d [ b ]")
        assert report.inclusive  # and indeed no vertex is lost:
        result = repro.transform(forest, "CAST (MUTATE d [ b ])")
        measured = quantify_loss(forest, result)
        assert measured.lost_vertices == 0
        # ... but strict recomputation shows relationship drift.
        assert measured.lost_edges > 0

    def test_vertex_soundness_on_the_same_instance(self):
        forest = repro.parse_document("<r><b><a><d/><b/></a></b></r>")
        result = repro.transform(forest, "CAST (MUTATE d [ b ])")
        assert result.forest.node_count() == forest.node_count()


class TestRenderInvariants:
    """Structural invariants of every rendered transformation."""

    @settings(max_examples=40, deadline=None)
    @given(
        documents(max_depth=3, max_children=3),
        st.sampled_from(TAGS),
        st.sampled_from(TAGS),
    )
    def test_output_conforms_to_target_shape(self, forest, parent, child):
        assume(parent != child)
        try:
            result = repro.transform(forest, f"CAST (MORPH {parent} [ {child} ])")
        except XMorphError:
            return
        shape = result.target_shape
        allowed_edges = {
            (edge.parent.out_name, edge.child.out_name) for edge in shape.edges()
        }
        root_names = {t.out_name for t in shape.roots()}
        for root in result.forest.roots:
            assert root.name in root_names
        for node in result.forest.iter_nodes():
            for kid in node.children:
                assert (node.name, kid.name) in allowed_edges

    @settings(max_examples=40, deadline=None)
    @given(
        documents(max_depth=3, max_children=3),
        st.sampled_from(TAGS),
    )
    def test_provenance_types_and_values_correct(self, forest, label):
        try:
            result = repro.transform(forest, f"CAST (MORPH {label} [*])")
        except XMorphError:
            return
        rendered = result.rendered
        for node in result.forest.iter_nodes():
            origin = rendered.source_of(node)
            assert origin is not None
            assert origin.name == node.name
            assert origin.text == node.text

    @settings(max_examples=30, deadline=None)
    @given(documents(max_depth=3, max_children=3))
    def test_identity_mutate_roundtrips_document(self, forest):
        result = repro.transform(forest, "MUTATE r")
        assert result.forest.canonical() == forest.canonical()
