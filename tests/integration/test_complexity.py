"""Empirical complexity guard-rails.

The paper's cost claims are asymptotic; these tests pin them as
regression guards using operation counters (not wall time, which is
noisy): the render's read side is linear in the input, the closest join
is a single merge pass, and compilation cost depends on the number of
*types*, not the amount of *data*.
"""

from repro.closeness import DocumentIndex
from repro.closeness.index import closest_join
from repro.workloads import generate_dblp

import repro


def _counted_join(publications):
    index = DocumentIndex(generate_dblp(publications))
    author = next(t for t in index.types() if t.dotted == "dblp.article.author")
    title = next(t for t in index.types() if t.dotted == "dblp.article.title")
    level = index.closest_lca_level(author, title)
    pairs = list(closest_join(index.nodes_of(author), index.nodes_of(title), level))
    inputs = len(index.nodes_of(author)) + len(index.nodes_of(title))
    return inputs, len(pairs)


class TestLinearReads:
    def test_render_reads_scale_linearly(self):
        reads = {}
        for publications in (200, 800):
            forest = generate_dblp(publications)
            result = repro.transform(forest, "CAST MORPH author [ title [ year ] ]")
            reads[publications] = result.rendered.nodes_read
        # 4x input -> ~4x reads (never quadratic).
        ratio = reads[800] / reads[200]
        assert 3.0 <= ratio <= 6.0

    def test_join_output_bounded_by_closeness(self):
        inputs_small, pairs_small = _counted_join(200)
        inputs_big, pairs_big = _counted_join(800)
        assert pairs_big / pairs_small <= 1.5 * (inputs_big / inputs_small)


class TestCompileIndependentOfDataSize:
    def test_same_types_same_analysis_cost(self):
        """Two documents with identical shape but 8x data: the loss
        analysis does identical pair work (measured by findings
        machinery via identical reports)."""
        small = repro.check(generate_dblp(100), "MUTATE dblp")
        large = repro.check(generate_dblp(800), "MUTATE dblp")
        assert small.guard_type == large.guard_type
        assert len(small.findings) == len(large.findings)

    def test_pathcard_pairs_quadratic_in_types_only(self):
        from repro.shape.pathcard import path_card_pairs

        for publications in (100, 800):
            index = DocumentIndex(generate_dblp(publications))
            pairs = path_card_pairs(index.shape)
            assert len(pairs) == len(index.types()) ** 2


class TestWriteSideQuadraticOnlyWhenDuplicating:
    def test_no_duplication_no_blowup(self):
        forest = generate_dblp(400)
        result = repro.transform(forest, "MUTATE dblp")
        assert result.rendered.nodes_written == forest.node_count()

    def test_duplication_is_the_exception_not_the_rule(self):
        forest = generate_dblp(400)
        result = repro.transform(forest, "CAST MORPH author [ title ]")
        # Titles duplicate per author (multi-author records), but the
        # factor is the average author count, not the input size.
        authors = len(forest.find_named("author"))
        titles_written = len(result.forest.find_named("title"))
        assert titles_written <= authors
