"""Tests for the database facade, shredder and stored index."""

import pytest
from hypothesis import given, settings

import repro
from repro.errors import DocumentNotFoundError, StorageError
from repro.storage import Database
from repro.storage.tables import decode_dewey, encode_dewey, pack_sequence, unpack_sequence, NodeRecord
from repro.xmltree import Dewey, parse_document
from repro.xmltree.node import NodeKind

from tests.conftest import FIG1A, FIG1B, FIG1C
from tests.strategies import xml_forests


@pytest.fixture
def db(tmp_path):
    database = Database(str(tmp_path / "x.db"))
    yield database
    database.close()


class TestCodecs:
    def test_dewey_roundtrip(self):
        for text in ["1", "1.2.3", "1.1.1.1.1"]:
            dewey = Dewey.parse(text)
            assert decode_dewey(encode_dewey(dewey)) == dewey

    def test_dewey_key_order_is_document_order(self):
        ids = [Dewey.parse(t) for t in ["1", "1.1", "1.1.2", "1.2", "2", "10.1"]]
        encoded = [encode_dewey(d) for d in ids]
        assert [decode_dewey(e) for e in sorted(encoded)] == sorted(ids)

    def test_sequence_pack_roundtrip(self):
        records = [
            NodeRecord(Dewey.parse("1.1"), 3, NodeKind.ELEMENT, "hello"),
            NodeRecord(Dewey.parse("1.2"), 3, NodeKind.ATTRIBUTE, "x" * 100),
            NodeRecord(Dewey.parse("1.3"), 3, NodeKind.ELEMENT, "", overflow_chunks=2),
        ]
        chunks = list(pack_sequence(records))
        unpacked = [r for chunk in chunks for r in unpack_sequence(3, chunk)]
        assert unpacked == records

    def test_sequence_chunking(self):
        records = [
            NodeRecord(Dewey((1, i)), 1, NodeKind.ELEMENT, "v" * 200)
            for i in range(1, 101)
        ]
        chunks = list(pack_sequence(records))
        assert len(chunks) > 1
        unpacked = [r for chunk in chunks for r in unpack_sequence(1, chunk)]
        assert unpacked == records


class TestDocumentLifecycle:
    def test_store_and_list(self, db):
        db.store_document("a", FIG1A)
        db.store_document("b", FIG1B)
        assert db.document_names() == ["a", "b"]

    def test_duplicate_name_rejected(self, db):
        db.store_document("a", FIG1A)
        with pytest.raises(StorageError):
            db.store_document("a", FIG1B)

    def test_missing_document(self, db):
        with pytest.raises(DocumentNotFoundError):
            db.describe("nope")

    def test_descriptor_contents(self, db):
        descriptor = db.store_document("a", FIG1A)
        assert descriptor["nodes"] == parse_document(FIG1A).node_count()
        assert descriptor["shred_seconds"] >= 0
        assert db.describe("a")["nodes"] == descriptor["nodes"]

    def test_load_forest_roundtrip(self, db):
        for name, text in [("a", FIG1A), ("b", FIG1B), ("c", FIG1C)]:
            db.store_document(name, text)
        for name, text in [("a", FIG1A), ("b", FIG1B), ("c", FIG1C)]:
            assert db.load_forest(name).canonical() == parse_document(text).canonical()

    def test_long_text_overflows(self, db):
        big = "word " * 2000  # ~10 KB, must overflow
        db.store_document("big", f"<r><t>{big}</t></r>")
        forest = db.load_forest("big")
        assert forest.roots[0].find("t").text == big

    def test_persistence_across_reopen(self, tmp_path):
        path = str(tmp_path / "p.db")
        with Database(path) as db:
            db.store_document("a", FIG1A)
        with Database(path) as again:
            assert again.document_names() == ["a"]
            result = again.transform("a", "MORPH author [ name ]")
            assert len(result.forest.roots) == 2


class TestDropDocument:
    def test_drop_removes_everything(self, db):
        db.store_document("a", FIG1A)
        db.store_document("b", FIG1B)
        deleted = db.drop_document("a")
        assert deleted > 0
        assert db.document_names() == ["b"]
        with pytest.raises(DocumentNotFoundError):
            db.describe("a")
        # The other document is untouched.
        assert db.load_forest("b").canonical() == parse_document(FIG1B).canonical()

    def test_drop_missing_raises(self, db):
        with pytest.raises(DocumentNotFoundError):
            db.drop_document("nope")

    def test_name_reusable_after_drop(self, db):
        db.store_document("a", FIG1A)
        db.drop_document("a")
        db.store_document("a", FIG1C)
        assert db.load_forest("a").canonical() == parse_document(FIG1C).canonical()

    def test_drop_clears_overflow(self, db):
        big = "lorem " * 2000
        db.store_document("big", f"<r><t>{big}</t></r>")
        db.drop_document("big")
        assert not list(db.tree.scan_prefix(b"V"))


class TestStoredIndex:
    def test_shape_matches_in_memory(self, db):
        db.store_document("a", FIG1A)
        stored = db.index("a")
        memory = repro.DocumentIndex(parse_document(FIG1A))
        assert stored.shape.fingerprint() == memory.shape.fingerprint()

    def test_type_distances_agree(self, db):
        for name, text in [("a", FIG1A), ("b", FIG1B), ("c", FIG1C)]:
            db.store_document(name, text)
        for name, text in [("a", FIG1A), ("b", FIG1B), ("c", FIG1C)]:
            stored = db.index(name)
            memory = repro.DocumentIndex(parse_document(text))
            for first in memory.types():
                for second in memory.types():
                    stored_first = stored.type_table.get(first.path)
                    stored_second = stored.type_table.get(second.path)
                    assert stored.type_distance(stored_first, stored_second) == (
                        memory.type_distance(first, second)
                    )

    def test_lazy_sequences_charge_io(self, db):
        # Big enough that sequence chunks live on pages of their own.
        books = "".join(
            f"<book><title>T{i}</title><author><name>N{i}</name></author></book>"
            for i in range(300)
        )
        db.store_document("big", f"<data>{books}</data>")
        db.drop_cache()
        index = db.index("big")
        title = index.type_table.match_label("title")[0]
        before = db.stats.cumulative_blocks
        nodes = index.nodes_of(title)
        assert len(nodes) == 300 and nodes[0].text == "T0"
        assert db.stats.cumulative_blocks > before
        assert db.stats.allocated > 0

    def test_sequences_cached(self, db):
        db.store_document("a", FIG1A)
        index = db.index("a")
        title = index.type_table.match_label("title")[0]
        first = index.nodes_of(title)
        assert index.nodes_of(title) is first

    def test_counts(self, db):
        db.store_document("a", FIG1A)
        index = db.index("a")
        book = index.type_table.match_label("book")[0]
        assert index.count_of(book) == 2
        assert index.node_count() == parse_document(FIG1A).node_count()


class TestGroupedSequence:
    def test_pairs_match_tree_parents(self, db):
        db.store_document("a", FIG1A)
        pairs = db.grouped_sequence("a", "title")
        forest = parse_document(FIG1A)
        expected = [
            (node.parent.dewey, node.dewey)
            for node in forest.iter_nodes()
            if node.name == "title"
        ]
        assert pairs == expected

    def test_root_type_has_no_parent(self, db):
        db.store_document("a", FIG1A)
        pairs = db.grouped_sequence("a", "data")
        assert pairs == [(None, parse_document(FIG1A).roots[0].dewey)]

    def test_children_grouped_contiguously(self, db):
        db.store_document("c", FIG1C)
        pairs = db.grouped_sequence("c", "book")
        parents = [parent for parent, _own in pairs]
        # Both books share the single author parent, adjacent in order.
        assert parents[0] == parents[1]

    def test_unknown_type(self, db):
        db.store_document("a", FIG1A)
        with pytest.raises(StorageError):
            db.grouped_sequence("a", "nosuch")


class TestTransformsOverStore:
    GUARD = "MORPH author [ name book [ title ] ]"

    def test_matches_in_memory_result(self, db):
        for name, text in [("a", FIG1A), ("b", FIG1B), ("c", FIG1C)]:
            db.store_document(name, text)
        for name, text in [("a", FIG1A), ("b", FIG1B), ("c", FIG1C)]:
            stored = db.transform(name, self.GUARD)
            memory = repro.transform(parse_document(text), self.GUARD)
            assert stored.forest.canonical() == memory.forest.canonical()
            assert stored.loss.guard_type == memory.loss.guard_type

    def test_compile_touches_no_sequence_blocks(self, db):
        db.store_document("a", FIG1A)
        db.drop_cache()
        db.index("a")  # load shape records
        before = db.stats.cumulative_blocks
        db.compile("a", self.GUARD)
        assert db.stats.cumulative_blocks == before

    def test_render_reads_only_needed_types(self, db):
        # A guard over author/name must not read publisher/title chunks.
        db.store_document("a", FIG1A)
        db.drop_cache()
        index = db.index("a")
        db.transform("a", "MORPH author [ name ]")
        assert index._sequences.keys() == {
            index.type_table.match_label("author")[0].type_id,
            index.type_table.match_label("author.name")[0].type_id,
        }

    @settings(max_examples=15, deadline=None)
    @given(xml_forests(max_roots=1, max_depth=3, max_children=3))
    def test_random_roundtrip(self, tmp_path_factory, forest):
        tmp = tmp_path_factory.mktemp("db")
        with Database(str(tmp / "r.db")) as db:
            db.store_document("doc", forest)
            again = db.load_forest("doc")
            assert again.canonical() == forest.canonical()
