"""The reader/writer lock matrix and frozen-snapshot semantics.

``Database(mode="r")`` takes a *shared* flock on ``<db>.lock`` while
writers keep the exclusive one, so the matrix is: reader+reader OK,
reader+writer conflict, writer+writer conflict — and every conflict
fails *fast* with the stable ``XM520`` code, never blocks.  Readers
never write: a sealed journal left by a crashed writer is loaded as an
in-memory page overlay (``recovery.snapshot_overlay_pages``), the files
on disk stay byte-identical, and replay/quarantine remain the next
writer's job.
"""

import hashlib
import os
import threading
import time

import pytest

from repro.errors import (
    DatabaseLockedError,
    InjectedFaultError,
    ReadOnlyDatabaseError,
    StorageError,
)
from repro.faults import FAULTS, SimulatedCrash
from repro.storage import Database

from tests.conftest import FIG1A

GUARD = "MORPH author [ name ]"

SECOND_DOC = "<data>" + "".join(
    f"<book><title>T{i}</title><author><name>A{i}</name></author></book>"
    for i in range(40)
) + "</data>"


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture
def store(tmp_path):
    path = str(tmp_path / "shared.db")
    with Database(path) as db:
        db.store_document("doc", FIG1A)
    return path


def _digest(path: str) -> dict[str, str]:
    """Content hashes of every on-disk artifact of the store."""
    digests = {}
    for suffix in ("", ".journal", ".lock"):
        target = path + suffix
        if os.path.exists(target):
            with open(target, "rb") as handle:
                digests[suffix or "main"] = hashlib.sha256(handle.read()).hexdigest()
    return digests


class TestLockMatrix:
    def test_reader_plus_reader(self, store):
        r1 = Database(store, mode="r")
        r2 = Database(store, mode="r")
        try:
            expected = r1.transform("doc", GUARD).xml()
            assert r2.transform("doc", GUARD).xml() == expected
        finally:
            r1.close()
            r2.close()

    def test_readers_transform_concurrently(self, store):
        handles = [Database(store, mode="r") for _ in range(4)]
        try:
            expected = handles[0].transform("doc", GUARD).xml()
            barrier = threading.Barrier(len(handles))
            outputs = [None] * len(handles)

            def read(i):
                barrier.wait()
                outputs[i] = handles[i].transform("doc", GUARD).xml()

            threads = [
                threading.Thread(target=read, args=(i,)) for i in range(len(handles))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert outputs == [expected] * len(handles)
        finally:
            for handle in handles:
                handle.close()

    def test_reader_excludes_writer(self, store):
        reader = Database(store, mode="r")
        try:
            start = time.monotonic()
            with pytest.raises(DatabaseLockedError) as excinfo:
                Database(store)
            assert time.monotonic() - start < 2.0, "lock conflict must fail fast"
            assert excinfo.value.code == "XM520"
        finally:
            reader.close()
        with Database(store) as writer:  # and the conflict leaves no residue
            writer.store_document("after", FIG1A)

    def test_writer_excludes_reader(self, store):
        writer = Database(store)
        try:
            with pytest.raises(DatabaseLockedError) as excinfo:
                Database(store, mode="r")
            assert excinfo.value.code == "XM520"
        finally:
            writer.close()

    def test_writer_excludes_writer(self, store):
        writer = Database(store)
        try:
            with pytest.raises(DatabaseLockedError) as excinfo:
                Database(store)
            assert excinfo.value.code == "XM520"
        finally:
            writer.close()

    def test_abandon_never_blocks_the_next_writer(self, store):
        Database(store, mode="r").abandon()
        with Database(store) as writer:
            writer.store_document("after-abandon", FIG1A)
        abandoned = Database(store)
        abandoned.abandon()
        with Database(store) as writer:
            assert "after-abandon" in writer.document_names()

    def test_invalid_mode_rejected(self, store):
        with pytest.raises(StorageError):
            Database(store, mode="a")


class TestReadOnlyEnforcement:
    def test_store_document_refused(self, store):
        with Database(store, mode="r") as reader:
            with pytest.raises(ReadOnlyDatabaseError) as excinfo:
                reader.store_document("nope", FIG1A)
            assert excinfo.value.code == "XM550"

    def test_drop_document_refused(self, store):
        with Database(store, mode="r") as reader:
            with pytest.raises(ReadOnlyDatabaseError) as excinfo:
                reader.drop_document("doc")
            assert excinfo.value.code == "XM550"

    def test_missing_store_refused(self, tmp_path):
        with pytest.raises(StorageError):
            Database(str(tmp_path / "absent.db"), mode="r")

    def test_reader_leaves_disk_untouched(self, store):
        before = _digest(store)
        with Database(store, mode="r") as reader:
            reader.transform("doc", GUARD)
            reader.drop_cache()
            reader.transform("doc", GUARD)
        assert _digest(store) == before


class TestFaultsMidRead:
    def test_injected_read_fault_is_coded_and_recoverable(self, store):
        reader = Database(store, mode="r")
        try:
            reader.drop_cache()  # force real page reads past the buffer pool
            with FAULTS.armed("pages.pread", action="raise"):
                with pytest.raises(InjectedFaultError) as excinfo:
                    reader.transform("doc", GUARD)
                assert excinfo.value.code == "XM530"
        finally:
            reader.abandon()  # die the way a crashed process would
        with Database(store) as writer:  # the store is fine; a writer proceeds
            assert writer.transform("doc", GUARD).xml()


class TestFrozenSnapshot:
    def _crash_mid_apply(self, path: str) -> None:
        """Leave a sealed journal whose batch is only partially applied."""
        db = Database(path)
        try:
            with FAULTS.armed("flush.apply", action="kill", skip=1):
                db.store_document("inflight", SECOND_DOC)
        except SimulatedCrash:
            db.abandon()
        else:  # pragma: no cover - the failpoint must fire
            db.close()
            pytest.fail("flush.apply failpoint never fired")

    def test_reader_overlays_sealed_journal_without_writing(self, store):
        self._crash_mid_apply(store)
        before = _digest(store)
        assert "main" in before and ".journal" in before
        with Database(store, mode="r") as reader:
            # The sealed batch is visible through the overlay...
            names = reader.document_names()
            assert "doc" in names and "inflight" in names
            assert reader.transform("doc", GUARD).xml()
            assert reader.stats.events.get("recovery.snapshot_overlay_pages", 0) > 0
        # ...and the reader replayed nothing: disk is byte-identical,
        # the journal still awaits the next writer.
        assert _digest(store) == before
        with Database(store) as writer:  # the writer replays it for real
            assert "inflight" in writer.document_names()

    def test_reader_ignores_corrupt_journal(self, store):
        # Crash while *writing* the journal: torn, unsealed, nothing
        # applied — the base file alone is the consistent state.
        db = Database(store)
        try:
            with FAULTS.armed("journal.write", action="truncate"):
                db.store_document("inflight", SECOND_DOC)
        except SimulatedCrash:
            db.abandon()
        else:
            db.close()
            pytest.fail("journal.write failpoint never fired")
        assert os.path.exists(store + ".journal")
        before = _digest(store)
        with Database(store, mode="r") as reader:
            # The torn batch never committed, so the reader sees only
            # the baseline and builds no overlay.
            assert "doc" in reader.document_names()
            assert "inflight" not in reader.document_names()
            assert reader.stats.events.get("recovery.snapshot_overlay_pages", 0) == 0
        assert _digest(store) == before, "readers must not quarantine journals"
