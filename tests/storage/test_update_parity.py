"""Differential parity: incremental updates vs a full re-shred.

The correctness bar for :mod:`repro.storage.update` is not "the
document reads back right" — it is *byte-identical storage state*: after
any batch of subtree edits, every Nodes / AdornedShapes /
TypeToSequence / GroupedSequence / overflow record, the catalog entry
and the shape fingerprint must equal what a fresh database produces by
shredding :func:`repro.storage.update.reference_apply`'s output from
scratch.  That single invariant covers Dewey renumbering, sequence
membership and order, type-id intern order (including remaps when types
appear or disappear mid-document), cardinality adornments and count
bookkeeping in one assertion.

Every test here runs the same edit batch through both paths and diffs
the stores key for key.
"""

import pytest

from repro.errors import StorageError
from repro.storage import (
    Database,
    DeleteSubtree,
    InsertSubtree,
    ReplaceSubtree,
    reference_apply,
)
from repro.xmltree import parse_forest

# Several types with different populations: book repeats, journal and
# its title are singletons (deleting them exercises type retirement and
# id remapping), the id attributes exercise attribute vertices.
LIB = """
<lib>
  <book id="b1"><title>T1</title><author><name>A1</name></author></book>
  <book id="b2"><title>T2</title><author><name>A2</name></author></book>
  <journal><title>J1</title></journal>
  <book id="b3"><title>T3</title></book>
</lib>
"""

GUARDS = ["MORPH book [ title ]", "MORPH author [ name ]"]


def snapshot(db, name):
    """One document's entire stored state, normalized for comparison.

    Keys are re-rooted at the keyspace byte (doc ids may differ between
    the two databases); the catalog drops ``doc_id`` and the timing
    field ``shred_seconds`` — everything else, fingerprint included,
    must match exactly.
    """
    descriptor = db.describe(name)
    doc = descriptor["doc_id"].to_bytes(4, "big")
    records = {}
    for keyspace in (b"N", b"S", b"T", b"G", b"V"):
        for key, value in db.tree.scan_prefix(keyspace + doc):
            records[keyspace + key[len(keyspace) + 4 :]] = value
    catalog = dict(descriptor)
    catalog.pop("doc_id")
    catalog.pop("shred_seconds", None)
    return records, catalog


def assert_parity(tmp_path, source, ops, guards=GUARDS):
    """Run ``ops`` incrementally and via re-shred; diff the stores."""
    with Database(str(tmp_path / "incremental.db"), durable=False) as db:
        db.store_document("doc", source)
        result = db.apply_batch("doc", ops)
        incremental = snapshot(db, "doc")
        incremental_forest = db.load_forest("doc").canonical()
        incremental_renders = {
            guard: db.transform("doc", guard).forest.canonical() for guard in guards
        }
    with Database(str(tmp_path / "oracle.db"), durable=False) as db:
        expected = reference_apply(parse_forest(source), list(ops))
        db.store_document("doc", expected)
        oracle = snapshot(db, "doc")
        oracle_forest = db.load_forest("doc").canonical()
        oracle_renders = {
            guard: db.transform("doc", guard).forest.canonical() for guard in guards
        }

    incremental_records, incremental_catalog = incremental
    oracle_records, oracle_catalog = oracle
    # Key-set first: a missing/extra record names itself in the diff.
    assert sorted(incremental_records) == sorted(oracle_records)
    for key in oracle_records:
        assert incremental_records[key] == oracle_records[key], key
    assert incremental_catalog == oracle_catalog
    assert incremental_forest == oracle_forest
    assert incremental_renders == oracle_renders
    return result


class TestInsertParity:
    def test_append_at_end(self, tmp_path):
        result = assert_parity(
            tmp_path, LIB, [InsertSubtree("1", "<book><title>T4</title></book>")]
        )
        assert result.nodes_added == 2
        assert result.nodes_renumbered == 0

    def test_insert_at_front_renumbers_every_sibling(self, tmp_path):
        result = assert_parity(
            tmp_path,
            LIB,
            [InsertSubtree("1", "<book><title>T0</title></book>", position=1)],
        )
        assert result.nodes_renumbered > 0

    def test_insert_in_the_middle(self, tmp_path):
        assert_parity(
            tmp_path,
            LIB,
            [InsertSubtree("1", "<magazine><title>M</title></magazine>", position=3)],
        )

    def test_insert_deep(self, tmp_path):
        # Into an existing book, displacing its author subtree.
        assert_parity(
            tmp_path,
            LIB,
            [InsertSubtree("1.1", "<isbn>111</isbn>", position=3)],
        )

    def test_new_type_interned_mid_document_remaps_ids(self, tmp_path):
        # <isbn> first occurs *before* <title>'s first occurrence, so a
        # re-shred interns it earlier: every later type id shifts by one.
        result = assert_parity(
            tmp_path, LIB, [InsertSubtree("1.1", "<isbn>111</isbn>", position=2)]
        )
        assert result.type_ids_remapped > 0
        assert result.types_added == 1

    def test_insert_nested_subtree_with_new_types(self, tmp_path):
        assert_parity(
            tmp_path,
            LIB,
            [
                InsertSubtree(
                    "1",
                    "<series><name>S</name><book><title>TS</title></book></series>",
                )
            ],
        )


class TestDeleteParity:
    def test_delete_first_sibling(self, tmp_path):
        result = assert_parity(tmp_path, LIB, [DeleteSubtree("1.1")])
        assert result.nodes_removed == 5  # book, id, title, author, name
        assert result.nodes_renumbered > 0

    def test_delete_middle_sibling_retires_types(self, tmp_path):
        # The journal is the only <journal>: its two types disappear and
        # later ids must compact down, exactly as a re-shred would.
        result = assert_parity(tmp_path, LIB, [DeleteSubtree("1.3")])
        assert result.types_removed == 2
        assert result.type_ids_remapped == 0  # journal types interned last

    def test_delete_last_sibling(self, tmp_path):
        result = assert_parity(tmp_path, LIB, [DeleteSubtree("1.4")])
        assert result.nodes_renumbered == 0

    def test_delete_every_instance_of_a_type(self, tmp_path):
        # Both authors go: author and author.name retire, journal's ids
        # (interned after them) compact downward.
        result = assert_parity(
            tmp_path,
            LIB,
            [DeleteSubtree("1.1.3"), DeleteSubtree("1.2.3")],
            guards=["MORPH book [ title ]"],  # no authors left to morph
        )
        assert result.types_removed == 2
        assert result.type_ids_remapped > 0

    def test_delete_nested_node(self, tmp_path):
        assert_parity(tmp_path, LIB, [DeleteSubtree("1.2.2")])


class TestReplaceParity:
    def test_replace_same_shape(self, tmp_path):
        result = assert_parity(
            tmp_path,
            LIB,
            [
                ReplaceSubtree(
                    "1.1",
                    '<book id="z"><title>Z</title><author><name>Q</name></author></book>',
                )
            ],
        )
        # Same types, same counts, same cardinalities: the adorned
        # shape — and therefore the fingerprint — must not change.
        assert not result.shape_changed
        assert result.new_fingerprint == result.old_fingerprint

    def test_replace_with_different_structure(self, tmp_path):
        result = assert_parity(
            tmp_path,
            LIB,
            [ReplaceSubtree("1.2", "<monograph><title>M</title></monograph>")],
        )
        assert result.shape_changed

    def test_replace_leaf(self, tmp_path):
        assert_parity(tmp_path, LIB, [ReplaceSubtree("1.1.2", "<title>T1b</title>")])


class TestBatchParity:
    def test_mixed_batch(self, tmp_path):
        assert_parity(
            tmp_path,
            LIB,
            [
                InsertSubtree("1", "<book><title>T4</title></book>", position=2),
                DeleteSubtree("1.4"),  # the journal, after the up-shift
                ReplaceSubtree("1.1", "<pamphlet><title>P</title></pamphlet>"),
                InsertSubtree("1.2", "<isbn>222</isbn>", position=1),
            ],
        )

    def test_ops_address_the_evolving_document(self, tmp_path):
        # Insert at the front, then delete "1.1" — which must hit the
        # node just inserted, not the original first book.
        result = assert_parity(
            tmp_path,
            LIB,
            [
                InsertSubtree("1", "<book><title>T0</title></book>", position=1),
                DeleteSubtree("1.1"),
            ],
        )
        assert result.nodes_added == 2
        assert result.nodes_removed == 2

    def test_insert_then_populate(self, tmp_path):
        # The second op addresses a node created by the first.
        assert_parity(
            tmp_path,
            LIB,
            [
                InsertSubtree("1", "<shelf/>"),
                InsertSubtree("1.5", "<label>new</label>"),
            ],
        )


class TestOverflowAndAttributes:
    def test_shifting_a_sibling_moves_overflow_chunks(self, tmp_path):
        big = "lorem " * 2000  # far past INLINE_TEXT: stored in V chunks
        source = f"<r><a>small</a><b>{big}</b></r>"
        assert_parity(
            tmp_path,
            source,
            [InsertSubtree("1", "<a>front</a>", position=1)],
            guards=[],
        )

    def test_inserted_subtree_with_overflow_text(self, tmp_path):
        big = "ipsum " * 2000
        assert_parity(
            tmp_path,
            LIB,
            [InsertSubtree("1.1", f"<blurb>{big}</blurb>")],
        )

    def test_deleting_overflow_node_clears_chunks(self, tmp_path):
        big = "dolor " * 2000
        source = f"<r><a>x</a><b>{big}</b><c>y</c></r>"
        result = assert_parity(tmp_path, source, [DeleteSubtree("1.2")], guards=[])
        assert result.nodes_removed == 1

    def test_attribute_heavy_edits(self, tmp_path):
        assert_parity(
            tmp_path,
            LIB,
            [
                ReplaceSubtree("1.1.1", '<id>b1x</id>'),
                InsertSubtree("1.2", '<flag>rare</flag>', position=1),
            ],
        )


class TestRootLevelOps:
    SOURCE = "<a><x>1</x></a><b><y>2</y></b><a><x>3</x></a>"

    def test_insert_root(self, tmp_path):
        assert_parity(
            tmp_path,
            self.SOURCE,
            [InsertSubtree(None, "<c><z>new</z></c>", position=2)],
            guards=[],
        )

    def test_delete_root(self, tmp_path):
        assert_parity(tmp_path, self.SOURCE, [DeleteSubtree("2")], guards=[])

    def test_replace_root(self, tmp_path):
        assert_parity(
            tmp_path,
            self.SOURCE,
            [ReplaceSubtree("3", "<b><y>replaced</y></b>")],
            guards=[],
        )

    def test_append_root(self, tmp_path):
        assert_parity(
            tmp_path, self.SOURCE, [InsertSubtree(None, "<a><x>4</x></a>")], guards=[]
        )


class TestErrorsLeaveStoreUntouched:
    @pytest.fixture
    def db(self, tmp_path):
        database = Database(str(tmp_path / "x.db"), durable=False)
        database.store_document("doc", LIB)
        yield database
        database.close()

    def test_bad_insert_position(self, db):
        before = snapshot(db, "doc")
        with pytest.raises(StorageError):
            db.apply_batch("doc", [InsertSubtree("1", "<x/>", position=99)])
        assert snapshot(db, "doc") == before

    def test_missing_target(self, db):
        before = snapshot(db, "doc")
        with pytest.raises(StorageError):
            db.apply_batch("doc", [DeleteSubtree("1.99")])
        assert snapshot(db, "doc") == before

    def test_failure_mid_batch_rolls_back_earlier_ops(self, db):
        before = snapshot(db, "doc")
        with pytest.raises(StorageError):
            db.apply_batch(
                "doc",
                [
                    InsertSubtree("1", "<book><title>T9</title></book>"),
                    DeleteSubtree("1.99"),  # fails after the insert staged
                ],
            )
        assert snapshot(db, "doc") == before
        # The handle stays live: the next (valid) batch succeeds.
        result = db.apply_batch("doc", [DeleteSubtree("1.4")])
        assert result.nodes_removed == 3  # book, id attribute, title

    def test_delete_only_root_rejected(self, tmp_path):
        with Database(str(tmp_path / "single.db"), durable=False) as db:
            db.store_document("doc", "<only><x>1</x></only>")
            with pytest.raises(StorageError):
                db.apply_batch("doc", [DeleteSubtree("1")])
            assert db.load_forest("doc").canonical() == parse_forest(
                "<only><x>1</x></only>"
            ).canonical()

    def test_empty_batch_rejected(self, db):
        with pytest.raises(StorageError):
            db.apply_batch("doc", [])

    def test_multiple_subtree_roots_rejected(self, db):
        with pytest.raises(StorageError):
            db.apply_batch("doc", [InsertSubtree("1", "<x/><y/>")])


class TestDurabilityAcrossReopen:
    def test_committed_batch_survives_reopen(self, tmp_path):
        path = str(tmp_path / "durable.db")
        with Database(path) as db:
            db.store_document("doc", LIB)
            db.apply_batch(
                "doc",
                [
                    InsertSubtree("1", "<book><title>T4</title></book>"),
                    DeleteSubtree("1.3"),
                ],
            )
            expected = db.load_forest("doc").canonical()
        with Database(path) as db:
            assert db.load_forest("doc").canonical() == expected

    def test_other_documents_untouched(self, tmp_path):
        with Database(str(tmp_path / "multi.db"), durable=False) as db:
            db.store_document("doc", LIB)
            db.store_document("other", "<o><p>1</p></o>")
            other_before = snapshot(db, "other")
            db.apply_batch("doc", [DeleteSubtree("1.1")])
            assert snapshot(db, "other") == other_before
