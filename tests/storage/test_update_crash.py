"""The crash matrix, extended to the incremental-update path.

Same protocol as ``test_crash_matrix``, but the faulted operation is an
``apply_batch`` of subtree edits instead of a ``store_document``: for
every known failpoint × fault flavour, a crash mid-batch must recover —
via journal replay on reopen — to *exactly* the pre-batch or post-batch
document, never a hybrid, and the store must be fsck-clean.  The
update-specific failpoints (``update.stage``, fired before each op is
staged, and ``update.commit``, fired between staging and the journaled
flush) sit before the commit point, so with those armed recovery must
always land on the pre-batch state; a ``raise``-flavoured fault there
additionally must leave the *live handle* usable (staged pages rolled
back, next batch succeeds).
"""

import pytest

from repro.errors import StorageError
from repro.faults import FAULTS, KNOWN_FAILPOINTS, SimulatedCrash
from repro.storage import Database, DeleteSubtree, InsertSubtree, ReplaceSubtree
from repro.storage import reference_apply
from repro.storage.fsck import fsck
from repro.xmltree.parser import parse_forest

# Large enough that the update batch dirties several pages, giving the
# mid-flush failpoints later writes to tear.
BASELINE_DOC = "<data>" + "".join(
    f"<book><title>T{i}</title>"
    f"<author><name>A{i}</name></author></book>"
    for i in range(30)
) + "</data>"

# One batch exercising all three op kinds, including a front insert
# (sibling renumbering) and a structural replace (type changes).  The
# inserted subtree carries enough text to dirty several pages, so
# mid-flush failpoints with skip > 0 have later page writes to tear.
BATCH = [
    InsertSubtree(
        "1",
        "<shelf>"
        + "".join(f"<book><title>S{i} {'pad ' * 40}</title></book>" for i in range(12))
        + "</shelf>",
        1,
    ),
    DeleteSubtree("1.5"),
    ReplaceSubtree("1.3", "<pamphlet><leaf>p</leaf></pamphlet>"),
]


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.reset()
    yield
    FAULTS.reset()


def _pre_canonical():
    return parse_forest(BASELINE_DOC).canonical()


def _post_canonical():
    return reference_apply(parse_forest(BASELINE_DOC), list(BATCH)).canonical()


def _commit_baseline(path: str) -> None:
    with Database(path) as db:
        db.store_document("doc", BASELINE_DOC)


def _update_under_fault(path: str, failpoint: str, action: str, skip: int = 0) -> bool:
    """Apply the edit batch with one failpoint armed.

    Returns True when the fault fired (crash or coded error), False
    when the armed site was never hit by this operation.
    """
    db = Database(path)
    try:
        with FAULTS.armed(failpoint, action=action, skip=skip) as armed:
            try:
                db.apply_batch("doc", list(BATCH))
                db.close()
                return armed.fired > 0
            except SimulatedCrash:
                db.abandon()
                return True
            except StorageError:
                # Injected "raise" fault: the app dies on the error.
                db.abandon()
                return True
    except SimulatedCrash:
        # Crash during Database.__init__ (replay of a prior batch).
        return True


def _assert_recovered(path: str) -> None:
    """Reopen and require exactly the pre- or post-batch document."""
    with Database(path) as db:
        state = db.load_forest("doc").canonical()
        assert state in (_pre_canonical(), _post_canonical()), (
            "recovered document is neither the pre-batch nor the "
            "post-batch state"
        )
        # Whatever state won, the document must still evaluate.
        result = db.transform("doc", "MORPH book [ title ]")
        assert result.forest.roots
    report = fsck(path)
    assert report.ok, f"fsck after recovery: {report.pretty()}"


@pytest.mark.parametrize("failpoint", KNOWN_FAILPOINTS)
@pytest.mark.parametrize("action", ["kill", "truncate", "raise"])
def test_update_crash_matrix(tmp_path, failpoint, action):
    path = str(tmp_path / "crash.db")
    _commit_baseline(path)
    _update_under_fault(path, failpoint, action)
    _assert_recovered(path)


@pytest.mark.parametrize("skip", [1, 3])
def test_crash_mid_update_flush_replays(tmp_path, skip):
    # Tear the in-place page apply partway through the update's commit
    # flush: the sealed journal must bring the batch back on reopen.
    path = str(tmp_path / "midapply.db")
    _commit_baseline(path)
    fired = _update_under_fault(path, "flush.apply", "kill", skip=skip)
    assert fired
    with Database(path) as db:
        assert db.load_forest("doc").canonical() == _post_canonical()
    assert fsck(path).ok


@pytest.mark.parametrize("failpoint", ["update.stage", "update.commit"])
@pytest.mark.parametrize("action", ["kill", "raise"])
def test_pre_commit_faults_preserve_old_state(tmp_path, failpoint, action):
    # Both update failpoints fire before the journaled flush, so the
    # disk never sees the batch: recovery must land on the pre state.
    path = str(tmp_path / "pre.db")
    _commit_baseline(path)
    assert _update_under_fault(path, failpoint, action)
    with Database(path) as db:
        assert db.load_forest("doc").canonical() == _pre_canonical()
    assert fsck(path).ok


@pytest.mark.parametrize("failpoint", ["update.stage", "update.commit"])
def test_injected_fault_rolls_back_and_handle_survives(tmp_path, failpoint):
    # A "raise"-flavoured fault is an ordinary error, not process death:
    # the handle must roll the staged pages back and keep working.
    from repro.errors import InjectedFaultError

    path = str(tmp_path / "live.db")
    _commit_baseline(path)
    with Database(path) as db:
        with FAULTS.armed(failpoint, action="raise"):
            with pytest.raises(InjectedFaultError):
                db.apply_batch("doc", list(BATCH))
        assert db.load_forest("doc").canonical() == _pre_canonical()
        # Staged state is gone: the same batch now applies cleanly.
        db.apply_batch("doc", list(BATCH))
        assert db.load_forest("doc").canonical() == _post_canonical()
    assert fsck(path).ok


def test_second_op_staging_fault_discards_first_op(tmp_path):
    # Arm update.stage with skip=1: the first op stages, the second op's
    # staging raises.  Rollback must discard the first op too.
    from repro.errors import InjectedFaultError

    path = str(tmp_path / "partial.db")
    _commit_baseline(path)
    with Database(path) as db:
        with FAULTS.armed("update.stage", action="raise", skip=1):
            with pytest.raises(InjectedFaultError):
                db.apply_batch("doc", list(BATCH))
        assert db.load_forest("doc").canonical() == _pre_canonical()
    assert fsck(path).ok


def test_crash_during_update_recovery_is_idempotent(tmp_path):
    # Crash mid-flush (sealed journal), then crash again during the
    # replay on reopen; the third open must still converge on post.
    path = str(tmp_path / "rec.db")
    _commit_baseline(path)
    assert _update_under_fault(path, "flush.apply", "kill", skip=1)
    with FAULTS.armed("pages.pwrite", action="kill"):
        with pytest.raises(SimulatedCrash):
            Database(path)
    _assert_recovered(path)


def test_fsck_repair_after_crashed_update(tmp_path, capsys):
    # The operator path: a store crashed mid-update must come back
    # clean through `xmorph fsck --repair` (which replays the journal),
    # matching what reopening through Database would do.
    from repro.cli import main

    path = str(tmp_path / "repair.db")
    _commit_baseline(path)
    assert _update_under_fault(path, "flush.apply", "kill", skip=1)
    exit_code = main(["fsck", "--db", path, "--repair"])
    assert exit_code == 0, capsys.readouterr().out
    with Database(path) as db:
        state = db.load_forest("doc").canonical()
        assert state in (_pre_canonical(), _post_canonical())


def test_rendered_output_agrees_after_recovered_update_crash(tmp_path):
    # After crash + recovery, compiled and interpreted rendering of the
    # recovered document must still agree.
    path = str(tmp_path / "parity.db")
    _commit_baseline(path)
    _update_under_fault(path, "flush.apply", "kill", skip=2)
    guard = "MORPH book [ title ]"
    with Database(path) as db:
        compiled = db.transform("doc", guard).forest.canonical()
    with Database(path, compile_renders=False) as db:
        interpreted = db.transform("doc", guard).forest.canonical()
    assert compiled == interpreted
