"""Tests for the paged file and buffer pool."""

import os

import pytest

from repro.errors import PageError
from repro.storage.pages import PAGE_SIZE, BufferPool, PagedFile
from repro.storage.stats import SystemStats


@pytest.fixture
def paged(tmp_path):
    stats = SystemStats()
    file = PagedFile(str(tmp_path / "t.db"), stats)
    yield file, stats
    file.close()


class TestPagedFile:
    def test_starts_empty(self, paged):
        file, _ = paged
        assert file.page_count == 0

    def test_allocate_and_roundtrip(self, paged):
        file, _ = paged
        page = file.allocate()
        payload = bytes([7]) * PAGE_SIZE
        file.write_page(page, payload)
        assert bytes(file.read_page(page)) == payload

    def test_out_of_range_rejected(self, paged):
        file, _ = paged
        with pytest.raises(PageError):
            file.read_page(0)
        file.allocate()
        with pytest.raises(PageError):
            file.read_page(1)

    def test_wrong_size_rejected(self, paged):
        file, _ = paged
        page = file.allocate()
        with pytest.raises(PageError):
            file.write_page(page, b"short")

    def test_io_counted(self, paged):
        file, stats = paged
        page = file.allocate()  # one write
        file.write_page(page, bytes(PAGE_SIZE))
        file.read_page(page)
        assert stats.blocks_out == 2
        assert stats.blocks_in == 1
        assert stats.io_seconds > 0

    def test_reopen_preserves_pages(self, tmp_path):
        stats = SystemStats()
        path = str(tmp_path / "p.db")
        file = PagedFile(path, stats)
        page = file.allocate()
        file.write_page(page, bytes([3]) * PAGE_SIZE)
        file.close()
        again = PagedFile(path, stats)
        assert again.page_count == 1
        assert bytes(again.read_page(0)) == bytes([3]) * PAGE_SIZE
        again.close()

    def test_misaligned_file_rejected(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        with pytest.raises(PageError):
            PagedFile(str(path), SystemStats())

    def test_misaligned_file_does_not_leak_fd(self, tmp_path):
        # Regression: the constructor used to raise after os.open
        # without closing the descriptor.
        path = tmp_path / "bad.db"
        path.write_bytes(b"x" * 100)
        for _ in range(5):
            before = len(os.listdir("/proc/self/fd"))
            with pytest.raises(PageError):
                PagedFile(str(path), SystemStats())
            assert len(os.listdir("/proc/self/fd")) == before


class TestChecksums:
    def test_bitflip_detected_on_read(self, tmp_path):
        from repro.errors import ChecksumError
        from repro.storage.pages import SLOT_SIZE

        path = str(tmp_path / "c.db")
        file = PagedFile(path, SystemStats())
        page = file.allocate()
        file.write_page(page, bytes([5]) * PAGE_SIZE)
        file.close()
        with open(path, "r+b") as handle:
            handle.seek(page * SLOT_SIZE + 17)
            handle.write(b"\xff")
        again = PagedFile(path, SystemStats())
        with pytest.raises(ChecksumError) as excinfo:
            again.read_page(page)
        assert excinfo.value.code == "XM510"
        assert excinfo.value.page_id == page
        assert again.stats.events["pages.checksum_failures"] == 1
        again.close()

    def test_misdirected_write_detected(self, tmp_path):
        # Swap two slots wholesale: each CRC matches its payload but not
        # its location, because the page id is part of the checksum.
        from repro.errors import ChecksumError
        from repro.storage.pages import SLOT_SIZE

        path = str(tmp_path / "m.db")
        file = PagedFile(path, SystemStats())
        for value in (1, 2):
            page = file.allocate()
            file.write_page(page, bytes([value]) * PAGE_SIZE)
        file.close()
        with open(path, "r+b") as handle:
            raw = handle.read()
            handle.seek(0)
            handle.write(raw[SLOT_SIZE:] + raw[:SLOT_SIZE])
        again = PagedFile(path, SystemStats())
        with pytest.raises(ChecksumError):
            again.read_page(0)
        again.close()

    def test_crc32c_known_answer(self):
        from repro.storage.checksum import crc32c

        # The canonical CRC32C check vector (RFC 3720 appendix B.4).
        assert crc32c(b"123456789") == 0xE3069283
        assert crc32c(b"") == 0
        # Incremental == one-shot.
        assert crc32c(b"6789", crc32c(b"12345")) == 0xE3069283


class TestBufferPool:
    def test_cached_read_is_free(self, paged):
        file, stats = paged
        pool = BufferPool(file, capacity=4)
        page = pool.allocate()
        baseline = stats.blocks_in
        pool.get(page)
        pool.get(page)
        assert stats.blocks_in == baseline  # all hits

    def test_eviction_pins_dirty_pages(self, paged):
        file, stats = paged
        pool = BufferPool(file, capacity=2)
        pages = [pool.allocate() for _ in range(3)]  # evicts the first
        buffer = pool.get(pages[0])  # reload, modify
        buffer[0] = 42
        pool.mark_dirty(pages[0])
        pool.get(pages[1])
        pool.get(pages[2])  # evicts pages[1] (LRU *clean*), not the dirty page
        assert pages[0] in pool._pages  # dirty page stays pinned ...
        assert pages[1] not in pool._pages  # ... the clean LRU page went
        assert file.read_page(pages[0])[0] == 0  # nothing written back yet
        pool.flush()
        assert file.read_page(pages[0])[0] == 42

    def test_all_dirty_pool_flushes_batch_before_evicting(self, paged):
        file, _ = paged
        pool = BufferPool(file, capacity=2)
        pages = [pool.allocate() for _ in range(2)]
        for page in pages:
            pool.get(page)[0] = 7
            pool.mark_dirty(page)
        third = pool.allocate()  # pool all-dirty: forces a full batch flush
        assert pool.resident == 2
        assert third in pool._pages
        # Both dirty pages were committed together, not one in isolation.
        assert file.read_page(pages[0])[0] == 7
        assert file.read_page(pages[1])[0] == 7

    def test_flush_persists(self, paged):
        file, _ = paged
        pool = BufferPool(file, capacity=4)
        page = pool.allocate()
        pool.get(page)[0] = 9
        pool.mark_dirty(page)
        pool.flush()
        assert file.read_page(page)[0] == 9

    def test_drop_cache_empties(self, paged):
        file, stats = paged
        pool = BufferPool(file, capacity=4)
        page = pool.allocate()
        pool.drop_cache()
        assert pool.resident == 0
        baseline = stats.blocks_in
        pool.get(page)
        assert stats.blocks_in == baseline + 1  # real read again

    def test_memory_accounted(self, paged):
        file, stats = paged
        pool = BufferPool(file, capacity=8)
        for _ in range(3):
            pool.allocate()
        assert stats.allocated == 3 * PAGE_SIZE

    def test_capacity_validated(self, paged):
        file, _ = paged
        with pytest.raises(PageError):
            BufferPool(file, capacity=0)

    def test_mark_dirty_requires_residency(self, paged):
        file, _ = paged
        pool = BufferPool(file, capacity=1)
        first = pool.allocate()
        pool.allocate()  # evicts first
        with pytest.raises(PageError):
            pool.mark_dirty(first)
