"""Tests for ``xmorph fsck``: checksum scan, journal handling, repair."""

import json
import os

import pytest

from repro.cli import main
from repro.faults import FAULTS, SimulatedCrash
from repro.storage import PAGE_SIZE, SLOT_SIZE, Database
from repro.storage.fsck import fsck

from tests.conftest import FIG1A


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture
def stored(tmp_path):
    path = str(tmp_path / "f.db")
    with Database(path) as db:
        db.store_document("a", FIG1A)
    return path


def _tear_page(path: str, page_id: int) -> None:
    """Flip a payload byte without updating the trailer."""
    with open(path, "r+b") as handle:
        offset = page_id * SLOT_SIZE + 100
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


class TestFsck:
    def test_clean_store(self, stored):
        report = fsck(stored)
        assert report.ok
        assert report.journal_status == "none"
        assert report.pages_scanned > 0
        assert report.checksum_failures == []
        assert report.btree_problems == []
        assert report.documents == ["a"]
        assert report.events["fsck.pages_scanned"] == report.pages_scanned

    def test_detects_torn_page(self, stored):
        _tear_page(stored, 1)
        report = fsck(stored)
        assert not report.ok
        assert report.checksum_failures == [1]
        assert report.events["fsck.checksum_failures"] == 1

    def test_detects_locked_database(self, stored):
        with Database(stored):
            report = fsck(stored)
        assert report.locked and not report.ok
        assert fsck(stored).ok  # lock released with the handle

    def test_sealed_journal_reported_and_replayed(self, stored):
        # Crash mid-apply: sealed journal on disk, main file torn.
        db = Database(stored)
        with FAULTS.armed("flush.apply", action="kill"):
            with pytest.raises(SimulatedCrash):
                db.store_document("b", FIG1A.replace("X", "XX"))
        db.abandon()

        report = fsck(stored)
        assert report.journal_status == "sealed"
        assert report.journal_pages > 0
        assert not report.ok

        repaired = fsck(stored, repair=True)
        assert repaired.journal_status == "replayed"
        assert repaired.ok, repaired.pretty()
        assert repaired.events["fsck.journals_replayed"] == 1
        assert not os.path.exists(stored + ".journal")
        with Database(stored) as again:
            assert sorted(again.document_names()) == ["a", "b"]

    def test_corrupt_journal_quarantined_on_repair(self, stored):
        journal_path = stored + ".journal"
        with open(journal_path, "wb") as handle:
            handle.write(b"XMJ2garbage-without-a-seal")
        assert fsck(stored).journal_status == "corrupt"
        assert os.path.exists(journal_path)  # no mutation without --repair

        repaired = fsck(stored, repair=True)
        assert repaired.journal_status == "quarantined"
        assert not os.path.exists(journal_path)
        assert os.path.exists(journal_path + ".corrupt")

    def test_catalog_mismatch_detected(self, stored):
        # Delete one Nodes record behind the catalog's back.
        with Database(stored) as db:
            doc_id = db.describe("a")["doc_id"]
            prefix = b"N" + doc_id.to_bytes(4, "big")
            key = next(iter(db.tree.scan_prefix(prefix)))[0]
            db.tree.delete(key)
        report = fsck(stored)
        assert not report.ok
        assert any("nodes" in problem.lower() for problem in report.document_problems)

    def test_legacy_file_rebuilt_with_repair(self, stored):
        # Strip the trailers to fabricate a pre-checksum legacy file.
        with open(stored, "rb") as handle:
            raw = handle.read()
        pages = len(raw) // SLOT_SIZE
        with open(stored, "wb") as handle:
            for page_id in range(pages):
                handle.write(raw[page_id * SLOT_SIZE : page_id * SLOT_SIZE + PAGE_SIZE])

        unrepaired = fsck(stored)
        assert not unrepaired.ok
        assert any("legacy" in error for error in unrepaired.errors)

        repaired = fsck(stored, repair=True)
        assert repaired.ok, repaired.pretty()
        assert repaired.events["recovery.pages_rebuilt"] == pages
        with Database(stored) as again:
            assert again.document_names() == ["a"]

    def test_legacy_file_rebuilt_on_normal_open(self, stored):
        with open(stored, "rb") as handle:
            raw = handle.read()
        pages = len(raw) // SLOT_SIZE
        with open(stored, "wb") as handle:
            for page_id in range(pages):
                handle.write(raw[page_id * SLOT_SIZE : page_id * SLOT_SIZE + PAGE_SIZE])
        with Database(stored) as db:
            assert db.document_names() == ["a"]
            assert db.stats.events["recovery.pages_rebuilt"] == pages
        assert fsck(stored).ok


class TestFsckCli:
    def test_clean_exit_zero(self, stored, capsys):
        assert main(["fsck", "--db", stored]) == 0
        out = capsys.readouterr().out
        assert "status: clean" in out

    def test_torn_page_exit_one(self, stored, capsys):
        _tear_page(stored, 1)
        assert main(["fsck", "--db", stored]) == 1
        assert "checksum mismatch" in capsys.readouterr().out

    def test_json_report(self, stored, capsys):
        _tear_page(stored, 1)
        assert main(["fsck", "--db", stored, "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["checksum_failures"] == [1]

    def test_repair_replays_sealed_journal(self, stored, capsys):
        db = Database(stored)
        with FAULTS.armed("flush.apply", action="kill"):
            with pytest.raises(SimulatedCrash):
                db.store_document("b", FIG1A.replace("X", "XX"))
        db.abandon()
        assert main(["fsck", "--db", stored, "--repair"]) == 0
        assert "replayed" in capsys.readouterr().out
