"""Tests for the failpoint registry and its storage-layer wiring."""

import pytest

from repro.errors import InjectedFaultError, StorageError
from repro.faults import FAULTS, KNOWN_FAILPOINTS, FailpointRegistry, SimulatedCrash
from repro.storage.pages import PAGE_SIZE, PagedFile
from repro.storage.stats import SystemStats


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.reset()
    yield
    FAULTS.reset()


class TestRegistry:
    def test_unarmed_fire_is_noop(self):
        registry = FailpointRegistry()
        registry.fire("pages.pwrite")  # nothing armed: no raise

    def test_unknown_name_rejected(self):
        registry = FailpointRegistry()
        with pytest.raises(StorageError):
            registry.arm("no.such.site")

    def test_unknown_action_rejected(self):
        registry = FailpointRegistry()
        with pytest.raises(StorageError):
            registry.arm("pages.pwrite", action="explode")

    def test_raise_action(self):
        registry = FailpointRegistry()
        registry.arm("pages.pwrite", action="raise")
        with pytest.raises(InjectedFaultError) as excinfo:
            registry.fire("pages.pwrite")
        assert excinfo.value.code == "XM530"
        assert excinfo.value.failpoint == "pages.pwrite"

    def test_kill_action_is_not_an_exception_subclass(self):
        # SimulatedCrash must escape `except Exception` handlers, like a
        # real kill -9 escapes the process's own error handling.
        registry = FailpointRegistry()
        registry.arm("pages.fsync", action="kill")
        with pytest.raises(SimulatedCrash):
            try:
                registry.fire("pages.fsync")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("SimulatedCrash was swallowed by `except Exception`")

    def test_truncate_runs_partial_effect(self):
        registry = FailpointRegistry()
        registry.arm("journal.write", action="truncate")
        ran = []
        with pytest.raises(SimulatedCrash):
            registry.fire("journal.write", partial=lambda: ran.append(1))
        assert ran == [1]

    def test_skip_counts_down(self):
        registry = FailpointRegistry()
        registry.arm("flush.apply", action="kill", skip=2)
        registry.fire("flush.apply")
        registry.fire("flush.apply")
        with pytest.raises(SimulatedCrash):
            registry.fire("flush.apply")

    def test_armed_context_manager_disarms(self):
        registry = FailpointRegistry()
        with registry.armed("pages.pread", action="raise"):
            assert registry.is_armed("pages.pread")
            with pytest.raises(InjectedFaultError):
                registry.fire("pages.pread")
        assert not registry.is_armed("pages.pread")
        registry.fire("pages.pread")

    def test_counters(self):
        registry = FailpointRegistry()
        registry.arm("pages.pwrite", action="raise")
        for _ in range(3):
            with pytest.raises(InjectedFaultError):
                registry.fire("pages.pwrite")
        assert registry.counters() == {"faults.pages.pwrite": 3}
        registry.reset()
        assert registry.counters() == {}

    def test_every_known_failpoint_armable(self):
        registry = FailpointRegistry()
        for name in KNOWN_FAILPOINTS:
            registry.arm(name)
        assert all(registry.is_armed(name) for name in KNOWN_FAILPOINTS)


class TestStorageWiring:
    def test_pwrite_raise_propagates(self, tmp_path):
        file = PagedFile(str(tmp_path / "t.db"), SystemStats())
        page = file.allocate()
        with FAULTS.armed("pages.pwrite", action="raise"):
            with pytest.raises(InjectedFaultError):
                file.write_page(page, bytes(PAGE_SIZE))
        file.close()

    def test_pwrite_truncate_tears_the_slot(self, tmp_path):
        # The torn half-slot must be caught by checksum verification.
        file = PagedFile(str(tmp_path / "t.db"), SystemStats())
        page = file.allocate()
        file.write_page(page, bytes([1]) * PAGE_SIZE)
        with FAULTS.armed("pages.pwrite", action="truncate"):
            with pytest.raises(SimulatedCrash):
                file.write_page(page, bytes([2]) * PAGE_SIZE)
        from repro.errors import ChecksumError

        with pytest.raises(ChecksumError):
            file.read_page(page)
        file.close()

    def test_allocate_failpoint(self, tmp_path):
        file = PagedFile(str(tmp_path / "t.db"), SystemStats())
        with FAULTS.armed("pages.allocate", action="raise"):
            with pytest.raises(InjectedFaultError):
                file.allocate()
        assert file.page_count == 0  # nothing half-allocated
        file.close()
