"""Tests for the write-ahead journal and crash recovery."""

import os

import pytest

from repro.storage import Database
from repro.storage.journal import Journal
from repro.storage.pages import PAGE_SIZE, BufferPool, PagedFile
from repro.storage.stats import SystemStats

from tests.conftest import FIG1A


class TestJournalFile:
    def test_roundtrip(self, tmp_path):
        journal = Journal(str(tmp_path / "j"))
        pages = {3: bytes([1]) * PAGE_SIZE, 7: bytes([2]) * PAGE_SIZE}
        journal.write(pages)
        assert journal.pending() == pages

    def test_clear(self, tmp_path):
        journal = Journal(str(tmp_path / "j"))
        journal.write({0: bytes(PAGE_SIZE)})
        journal.clear()
        assert journal.pending() is None

    def test_empty_batch_is_noop(self, tmp_path):
        journal = Journal(str(tmp_path / "j"))
        journal.write({})
        assert journal.pending() is None

    def test_unsealed_journal_quarantined(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(str(path))
        journal.write({1: bytes(PAGE_SIZE)})
        # Simulate a crash mid-journal: truncate before the seal.
        raw = path.read_bytes()
        path.write_bytes(raw[:-2])
        assert journal.pending() is None
        # Forensic evidence preserved, not deleted.
        assert not path.exists()
        assert (tmp_path / "j.corrupt").exists()

    def test_torn_write_mid_batch_quarantined(self, tmp_path):
        # A crash partway through the journal write leaves a torn file:
        # header + some page images, no seal.  Recovery must treat it as
        # never-written (the main file was not touched yet).
        path = tmp_path / "j"
        journal = Journal(str(path))
        pages = {i: bytes([i + 1]) * PAGE_SIZE for i in range(4)}
        journal.write(pages)
        raw = path.read_bytes()
        # Truncate in the middle of the third page image.
        path.write_bytes(raw[: len(raw) // 2])
        assert journal.pending() is None
        assert not path.exists()
        assert (tmp_path / "j.corrupt").exists()

    def test_discarded_journal_counted(self, tmp_path):
        stats = SystemStats()
        path = tmp_path / "j"
        journal = Journal(str(path), stats=stats)
        journal.write({1: bytes(PAGE_SIZE)})
        path.write_bytes(path.read_bytes()[:-1])
        assert journal.pending() is None
        assert stats.events["recovery.discarded_journals"] == 1

    def test_crc_failure_quarantined(self, tmp_path):
        # A sealed, size-correct journal whose body was bit-flipped must
        # fail its CRC and be quarantined, never replayed.
        path = tmp_path / "j"
        journal = Journal(str(path))
        journal.write({0: bytes([7]) * PAGE_SIZE})
        raw = bytearray(path.read_bytes())
        raw[200] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert journal.pending() is None
        assert (tmp_path / "j.corrupt").exists()

    def test_inspect_is_nondestructive(self, tmp_path):
        path = tmp_path / "j"
        journal = Journal(str(path))
        journal.write({1: bytes(PAGE_SIZE)})
        path.write_bytes(path.read_bytes()[:-1])
        assert journal.inspect() == ("corrupt", None)
        assert path.exists()  # inspect never quarantines

    def test_directory_entry_fsynced(self, tmp_path, monkeypatch):
        # The journal's directory entry must be made durable after the
        # file is created and after it is unlinked — otherwise a crash
        # can lose the entry while the main file is already torn.
        synced: list[int] = []
        import repro.storage.journal as journal_module

        real = journal_module._fsync_dir
        monkeypatch.setattr(
            journal_module, "_fsync_dir", lambda p: (synced.append(1), real(p))
        )
        journal = Journal(str(tmp_path / "j"))
        journal.write({0: bytes(PAGE_SIZE)})
        assert len(synced) == 1  # after create+fsync
        journal.clear()
        assert len(synced) == 2  # after unlink

    def test_torn_write_with_lucky_seal_bytes_discarded(self, tmp_path):
        # Torn mid-batch but the truncation point happens to end in the
        # seal bytes (page data can contain b"DONE"): the size check must
        # still reject it.
        path = tmp_path / "j"
        journal = Journal(str(path))
        journal.write({0: b"DONE" * (PAGE_SIZE // 4), 1: bytes(PAGE_SIZE)})
        raw = path.read_bytes()
        header = 8  # magic + count
        path.write_bytes(raw[: header + 4 + 400])  # ends inside page 0's "DONE"s
        assert journal.pending() is None

    def test_corrupt_magic_discarded(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"NOPE" + bytes(100) + b"DONE")
        assert Journal(str(path)).pending() is None

    def test_wrong_size_entry_rejected(self, tmp_path):
        journal = Journal(str(tmp_path / "j"))
        with pytest.raises(ValueError):
            journal.write({0: b"short"})

    def test_short_os_write_retried_until_durable(self, tmp_path, monkeypatch):
        # os.write may accept fewer bytes than offered; the writer must
        # loop until the whole batch (and its seal) is down.
        journal = Journal(str(tmp_path / "j"))
        real_write = os.write

        def short_write(fd, data):
            return real_write(fd, bytes(data)[:1000])

        monkeypatch.setattr(os, "write", short_write)
        pages = {i: bytes([i + 1]) * PAGE_SIZE for i in range(3)}
        journal.write(pages)
        monkeypatch.undo()
        assert journal.pending() == pages


class TestRecovery:
    def test_replay_applies_pages(self, tmp_path):
        stats = SystemStats()
        file = PagedFile(str(tmp_path / "d.db"), stats)
        file.allocate()
        file.close()

        # A sealed journal exists but was never applied (crash mid-apply).
        journal = Journal(str(tmp_path / "d.db.journal"))
        journal.write({0: bytes([9]) * PAGE_SIZE})

        file = PagedFile(str(tmp_path / "d.db"), stats)
        applied = journal.recover(file)
        assert applied == 1
        assert bytes(file.read_page(0)) == bytes([9]) * PAGE_SIZE
        assert journal.pending() is None
        file.close()

    def test_replay_extends_file(self, tmp_path):
        stats = SystemStats()
        file = PagedFile(str(tmp_path / "e.db"), stats)
        journal = Journal(str(tmp_path / "e.db.journal"))
        journal.write({2: bytes([5]) * PAGE_SIZE})
        journal.recover(file)
        assert file.page_count == 3
        assert bytes(file.read_page(2)) == bytes([5]) * PAGE_SIZE
        file.close()


class TestCrashSafeDatabase:
    def test_simulated_crash_between_journal_and_apply(self, tmp_path):
        path = str(tmp_path / "crash.db")
        with Database(path) as db:
            db.store_document("a", FIG1A)
        # Take a sealed journal image of legitimate page contents, then
        # corrupt the main file (as if the in-place apply never ran).
        stats = SystemStats()
        file = PagedFile(path, stats)
        images = {
            page_id: bytes(file.read_page(page_id))
            for page_id in range(file.page_count)
        }
        # "Crash": clobber the data pages.
        for page_id in range(1, file.page_count):
            file.write_page(page_id, bytes(PAGE_SIZE))
        file.close()
        Journal(path + ".journal").write(images)

        # Reopen: recovery must replay the journal and the data is back.
        with Database(path) as again:
            assert again.document_names() == ["a"]
            assert again.load_forest("a").node_count() > 0

    def test_flush_clears_journal(self, tmp_path):
        path = str(tmp_path / "ok.db")
        with Database(path) as db:
            db.store_document("a", FIG1A)
            db.flush()
        assert not os.path.exists(path + ".journal")

    def test_durable_false_skips_journal(self, tmp_path):
        path = str(tmp_path / "nd.db")
        with Database(path, durable=False) as db:
            db.store_document("a", FIG1A)
        assert not os.path.exists(path + ".journal")

    def test_eviction_with_journal_is_consistent(self, tmp_path):
        # A tiny pool forces journaled evictions mid-shred.
        path = str(tmp_path / "tiny.db")
        with Database(path, cache_pages=2) as db:
            db.store_document("a", FIG1A)
            assert db.load_forest("a").node_count() > 0
