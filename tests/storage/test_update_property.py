"""Property-based parity for random interleaved edit sequences.

Hypothesis drives random documents through random batches of insert /
delete / replace operations and pins four properties simultaneously:

* **Byte parity** — the incrementally-updated store equals a fresh
  re-shred of :func:`repro.storage.update.reference_apply`'s output,
  record for record (the same oracle as ``test_update_parity``).
* **Fingerprint agreement** — via the catalog comparison.
* **fsck cleanliness** — the updated store passes the offline integrity
  check (checksums, catalog/table cross-checks) after closing.
* **Compiled/interpreted render agreement** — the incremental database
  renders with specialized compiled renderers, the oracle with the
  interpreter (``compile_renders=False``); their guard outputs must be
  canonically equal.

Operation *seeds* (abstract indices) are materialized into concrete
Dewey-addressed operations against a simulation of the evolving
document, so every generated op is valid by construction and each op
addresses the state left by the previous one.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import StorageError, XMorphError
from repro.storage import (
    Database,
    DeleteSubtree,
    InsertSubtree,
    ReplaceSubtree,
    fsck,
    reference_apply,
)
from repro.storage import tables
from repro.xmltree.node import XmlForest, element

from tests.storage.test_update_parity import snapshot
from tests.strategies import (
    TAGS,
    _SKEWED_VALUES,
    documents,
    skewed_documents,
    xml_trees,
)

# (kind, target index, position index, subtree) — indices are reduced
# modulo the live node/slot count at materialization time.
op_seeds = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "replace"]),
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=0, max_value=10**6),
        xml_trees(max_depth=2, max_children=2, values=_SKEWED_VALUES),
    ),
    min_size=1,
    max_size=5,
)

base_documents = st.one_of(
    documents(max_depth=3, max_children=3),
    skewed_documents(max_depth=2),
)


def _copy(forest: XmlForest) -> XmlForest:
    return XmlForest([root.copy_subtree() for root in forest.roots]).renumber()


def materialize(seeds, base: XmlForest):
    """Turn abstract seeds into concrete, valid, Dewey-addressed ops.

    A simulation copy of the document evolves alongside, so each op's
    address is resolved against the state the previous ops left —
    exactly the batch semantics of ``apply_batch``.
    """
    sim = _copy(base)
    ops = []
    for kind, a, b, subtree in seeds:
        nodes = list(sim.iter_nodes())
        target = nodes[a % len(nodes)]
        if kind == "insert":
            slots = len(target.children) + 1
            op = InsertSubtree(str(target.dewey), subtree, b % slots + 1)
        elif kind == "delete":
            if target.parent is None and len(sim.roots) == 1:
                if not target.children:
                    continue  # deleting the only root is forbidden
                target = target.children[b % len(target.children)]
            op = DeleteSubtree(str(target.dewey))
        else:
            op = ReplaceSubtree(str(target.dewey), subtree)
        reference_apply(sim, [op])
        ops.append(op)
    return ops


def _render_all(db):
    """Canonical output of a one-label guard per resolvable tag."""
    rendered = {}
    for tag in TAGS:
        try:
            rendered[tag] = db.transform("doc", f"MORPH {tag}").forest.canonical()
        except XMorphError:
            rendered[tag] = None  # label absent (or otherwise rejected)
    return rendered


class TestRandomEditSequences:
    @settings(max_examples=25, deadline=None)
    @given(base=base_documents, seeds=op_seeds)
    def test_parity_fsck_and_render_agreement(self, tmp_path_factory, base, seeds):
        ops = materialize(seeds, base)
        assume(ops)
        tmp = tmp_path_factory.mktemp("upd")
        incremental_path = str(tmp / "incremental.db")
        with Database(incremental_path, durable=False) as db:
            db.store_document("doc", _copy(base))
            db.apply_batch("doc", ops)
            incremental = snapshot(db, "doc")
            incremental_forest = db.load_forest("doc").canonical()
            incremental_renders = _render_all(db)  # compiled renderers
        with Database(
            str(tmp / "oracle.db"), durable=False, compile_renders=False
        ) as db:
            db.store_document("doc", reference_apply(_copy(base), ops))
            oracle = snapshot(db, "doc")
            oracle_forest = db.load_forest("doc").canonical()
            oracle_renders = _render_all(db)  # interpreter

        incremental_records, incremental_catalog = incremental
        oracle_records, oracle_catalog = oracle
        assert sorted(incremental_records) == sorted(oracle_records)
        for key in oracle_records:
            assert incremental_records[key] == oracle_records[key], key
        assert incremental_catalog == oracle_catalog
        assert incremental_forest == oracle_forest
        assert incremental_renders == oracle_renders
        # The patched store must be clean under offline inspection too.
        report = fsck(incremental_path)
        assert report.ok, report.problems

    @settings(max_examples=15, deadline=None)
    @given(base=skewed_documents(max_depth=2), seeds=op_seeds)
    def test_batch_equals_singleton_batches(self, tmp_path_factory, base, seeds):
        """One N-op batch and N single-op batches reach the same state."""
        ops = materialize(seeds, base)
        assume(ops)
        tmp = tmp_path_factory.mktemp("upd")
        with Database(str(tmp / "batched.db"), durable=False) as db:
            db.store_document("doc", _copy(base))
            db.apply_batch("doc", ops)
            batched = snapshot(db, "doc")
        with Database(str(tmp / "stepwise.db"), durable=False) as db:
            db.store_document("doc", _copy(base))
            for op in ops:
                db.apply_batch("doc", [op])
            stepwise = snapshot(db, "doc")
        assert batched == stepwise


class TestDeweyRenumberOverflow:
    """Regression: sibling-ordinal exhaustion at the storage limit.

    The real limit is 2**24-1 siblings; monkeypatching it small makes
    the boundary reachable.  Overflow before any staging must reject
    cleanly; overflow detected mid-write (inside an inserted subtree)
    must roll the staged prefix back.  Either way the store is
    untouched and fsck-clean.
    """

    def _store(self, tmp_path, children=3):
        db = Database(str(tmp_path / "x.db"), durable=False)
        kids = "".join(f"<c>{i}</c>" for i in range(children))
        db.store_document("doc", f"<r>{kids}</r>")
        return db

    def test_insert_past_sibling_limit_rejected_before_staging(
        self, tmp_path, monkeypatch
    ):
        db = self._store(tmp_path, children=3)
        try:
            before = snapshot(db, "doc")
            monkeypatch.setattr(tables, "_COMPONENT_MAX", 3)
            with pytest_raises_storage("Dewey renumber overflow"):
                db.apply_batch("doc", [InsertSubtree("1", "<c>3</c>")])
            assert snapshot(db, "doc") == before
        finally:
            db.close()
        assert fsck(str(tmp_path / "x.db")).ok

    def test_overflow_inside_inserted_subtree_rolls_back(self, tmp_path, monkeypatch):
        db = self._store(tmp_path, children=1)
        try:
            before = snapshot(db, "doc")
            monkeypatch.setattr(tables, "_COMPONENT_MAX", 3)
            wide = element("w")
            for i in range(5):  # five children > the patched limit
                wide.append(element("k", text=str(i)))
            with pytest_raises_storage("exceeds the storage limit"):
                db.apply_batch("doc", [InsertSubtree("1", wide)])
            assert snapshot(db, "doc") == before
            # The handle survived the rollback and still accepts edits.
            result = db.apply_batch("doc", [InsertSubtree("1", "<c>ok</c>")])
            assert result.nodes_added == 1
        finally:
            db.close()
        assert fsck(str(tmp_path / "x.db")).ok


def pytest_raises_storage(match: str):
    import pytest

    return pytest.raises(StorageError, match=match)
