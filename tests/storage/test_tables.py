"""Property tests for the table key/record codecs.

The critical invariant: every key encoding must preserve the order the
scans rely on — Dewey byte order is document order, and each keyspace's
composite keys sort by their components.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import tables
from repro.xmltree.dewey import Dewey
from repro.xmltree.node import NodeKind

dewey_parts = st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=6)


class TestDeweyEncoding:
    @given(dewey_parts)
    def test_roundtrip(self, parts):
        dewey = Dewey(tuple(parts))
        assert tables.decode_dewey(tables.encode_dewey(dewey)) == dewey

    @given(dewey_parts, dewey_parts)
    def test_byte_order_is_document_order(self, first, second):
        a, b = Dewey(tuple(first)), Dewey(tuple(second))
        assert (tables.encode_dewey(a) < tables.encode_dewey(b)) == (a < b)

    def test_component_limit_enforced(self):
        with pytest.raises(StorageError):
            tables.encode_dewey(Dewey((1 << 24,)))

    def test_component_limit_boundary(self):
        boundary = Dewey(((1 << 24) - 1,))
        assert tables.decode_dewey(tables.encode_dewey(boundary)) == boundary


class TestCompositeKeys:
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        dewey_parts,
        dewey_parts,
    )
    def test_node_keys_sort_by_doc_then_dewey(self, doc_a, doc_b, parts_a, parts_b):
        key_a = tables.node_key(doc_a, Dewey(tuple(parts_a)))
        key_b = tables.node_key(doc_b, Dewey(tuple(parts_b)))
        if doc_a != doc_b:
            assert (key_a < key_b) == (doc_a < doc_b)
        else:
            assert (key_a < key_b) == (Dewey(tuple(parts_a)) < Dewey(tuple(parts_b)))

    def test_sequence_keys_sort_by_chunk(self):
        keys = [tables.sequence_key(1, 7, chunk) for chunk in range(300)]
        assert keys == sorted(keys)

    def test_keyspaces_disjoint(self):
        dewey = Dewey((1,))
        prefixes = {
            tables.catalog_key("x")[:1],
            tables.node_key(0, dewey)[:1],
            tables.shape_key(0, 0)[:1],
            tables.sequence_key(0, 0, 0)[:1],
            tables.grouped_key(0, 0, 0)[:1],
            tables.overflow_key(0, dewey, 0)[:1],
            tables.META_KEY[:1],
        }
        assert len(prefixes) == 7


texts = st.text(max_size=200)


class TestRecordCodecs:
    @given(dewey_parts, st.integers(min_value=0, max_value=10000), texts, st.booleans())
    def test_node_value_roundtrip(self, parts, type_id, text, is_attribute):
        record = tables.NodeRecord(
            Dewey(tuple(parts)),
            type_id,
            NodeKind.ATTRIBUTE if is_attribute else NodeKind.ELEMENT,
            text,
        )
        decoded = tables.decode_node_value(
            record.dewey, tables.encode_node_value(record)
        )
        assert decoded == record

    @given(st.lists(st.tuples(dewey_parts, texts), max_size=60))
    def test_sequence_roundtrip(self, entries):
        records = [
            tables.NodeRecord(Dewey(tuple(parts)), 5, NodeKind.ELEMENT, text)
            for parts, text in entries
        ]
        chunks = list(tables.pack_sequence(records))
        unpacked = [r for chunk in chunks for r in tables.unpack_sequence(5, chunk)]
        assert unpacked == records

    @given(st.dictionaries(st.text(max_size=10), st.integers(), max_size=20))
    def test_shape_chunks_roundtrip(self, mapping):
        chunks = tables.encode_shape(mapping)
        assert tables.decode_shape(chunks) == mapping
