"""Tests for the vmstat-analog statistics (the Figures 11–13 substrate)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.storage.stats import CostModel, SystemStats


@pytest.fixture
def stats():
    return SystemStats(CostModel(block_seconds=1e-3, cpu_op_seconds=1e-6, total_memory=1000))


class TestCharging:
    def test_block_io(self, stats):
        stats.block_read(3)
        stats.block_write(2)
        assert stats.blocks_in == 3
        assert stats.blocks_out == 2
        assert stats.cumulative_blocks == 5
        assert stats.io_seconds == pytest.approx(5e-3)

    def test_cpu(self, stats):
        stats.charge_cpu(1000)
        assert stats.cpu_seconds == pytest.approx(1e-3)

    def test_simulated_seconds_sums(self, stats):
        stats.block_read(1)
        stats.charge_cpu(500)
        assert stats.simulated_seconds == pytest.approx(1e-3 + 5e-4)


class TestWaitPercent:
    def test_zero_when_idle(self, stats):
        assert stats.wait_percent == 0.0

    def test_pure_io_is_hundred(self, stats):
        stats.block_read(1)
        assert stats.wait_percent == 100.0

    def test_balanced(self, stats):
        stats.block_read(1)  # 1 ms
        stats.charge_cpu(1000)  # 1 ms
        assert stats.wait_percent == pytest.approx(50.0)


class TestMemoryAccounting:
    def test_allocate_release(self, stats):
        stats.allocate(600)
        assert stats.available_memory == 400
        stats.release(200)
        assert stats.available_memory == 600
        assert stats.peak_allocated == 600

    def test_available_never_negative(self, stats):
        stats.allocate(5000)
        assert stats.available_memory == 0

    def test_release_floor(self, stats):
        stats.release(100)
        assert stats.allocated == 0


class TestSampling:
    def test_sample_snapshot(self, stats):
        stats.block_read(2)
        stats.charge_cpu(100)
        stats.allocate(300)
        sample = stats.sample("midpoint")
        assert sample.label == "midpoint"
        assert sample.blocks_in == 2
        assert sample.wait_percent == stats.wait_percent
        assert sample.available_memory == 700
        assert stats.samples == [sample]

    def test_reset_clears_counters_not_model(self, stats):
        stats.block_read(1)
        stats.sample("x")
        stats.reset()
        assert stats.cumulative_blocks == 0
        assert stats.samples == []
        assert stats.model.block_seconds == 1e-3


    def test_sample_ordering_preserved(self, stats):
        """Samples append in call order — the Figures 11–13 time series."""
        for step in range(5):
            stats.block_read()
            stats.sample(f"step-{step}")
        assert [sample.label for sample in stats.samples] == [
            f"step-{step}" for step in range(5)
        ]
        blocks = [sample.blocks_in for sample in stats.samples]
        assert blocks == sorted(blocks) == [1, 2, 3, 4, 5]
        io = [sample.io_seconds for sample in stats.samples]
        assert io == sorted(io)

    def test_wait_percent_monotonic_under_pure_io(self, stats):
        stats.charge_cpu(1000)
        series = []
        for _ in range(3):
            stats.block_read()
            series.append(stats.sample("io").wait_percent)
        assert series == sorted(series)
        assert 0.0 < series[0] < series[-1] < 100.0


class TestCostModelDefaults:
    def test_paper_era_defaults(self):
        model = CostModel()
        assert model.block_seconds == pytest.approx(1e-4)
        assert model.total_memory == 3_500_000_000

    def test_charging_scales_with_model(self):
        cheap = SystemStats(CostModel(block_seconds=1e-5, cpu_op_seconds=1e-8))
        dear = SystemStats(CostModel(block_seconds=1e-3, cpu_op_seconds=1e-6))
        for stats in (cheap, dear):
            stats.block_read(10)
            stats.charge_cpu(10)
        assert dear.io_seconds == pytest.approx(cheap.io_seconds * 100)
        assert dear.cpu_seconds == pytest.approx(cheap.cpu_seconds * 100)


class TestMetricsFeed:
    """With a registry attached, charges mirror into trace counters."""

    def test_block_io_feeds_counters(self, stats):
        stats.metrics = MetricsRegistry()
        stats.block_read(3)
        stats.block_write(2)
        assert stats.metrics.counter("storage.blocks_read") == 3
        assert stats.metrics.counter("storage.blocks_written") == 2

    def test_cpu_feeds_counter(self, stats):
        stats.metrics = MetricsRegistry()
        stats.charge_cpu(250)
        assert stats.metrics.counter("storage.cpu_ops") == 250

    def test_allocation_feeds_gauge(self, stats):
        stats.metrics = MetricsRegistry()
        stats.allocate(600)
        assert stats.metrics.gauges["storage.allocated_bytes"] == 600
        stats.release(200)
        assert stats.metrics.gauges["storage.allocated_bytes"] == 400

    def test_detached_by_default(self, stats):
        assert stats.metrics is None
        stats.block_read()  # must not raise

    def test_model_figures_unchanged_by_mirroring(self, stats):
        """Attaching metrics must not perturb the cost model's numbers."""
        mirrored = SystemStats(stats.model, metrics=MetricsRegistry())
        for target in (stats, mirrored):
            target.block_read(4)
            target.block_write(1)
            target.charge_cpu(100)
        assert mirrored.io_seconds == stats.io_seconds
        assert mirrored.cpu_seconds == stats.cpu_seconds
        assert mirrored.wait_percent == stats.wait_percent

    def test_reset_keeps_registry_attached(self, stats):
        stats.metrics = MetricsRegistry()
        stats.block_read()
        stats.reset()
        assert stats.metrics is not None
        stats.block_write()
        assert stats.metrics.counter("storage.blocks_written") == 1
