"""Tests for the vmstat-analog statistics (the Figures 11–13 substrate)."""

import pytest

from repro.storage.stats import CostModel, SystemStats


@pytest.fixture
def stats():
    return SystemStats(CostModel(block_seconds=1e-3, cpu_op_seconds=1e-6, total_memory=1000))


class TestCharging:
    def test_block_io(self, stats):
        stats.block_read(3)
        stats.block_write(2)
        assert stats.blocks_in == 3
        assert stats.blocks_out == 2
        assert stats.cumulative_blocks == 5
        assert stats.io_seconds == pytest.approx(5e-3)

    def test_cpu(self, stats):
        stats.charge_cpu(1000)
        assert stats.cpu_seconds == pytest.approx(1e-3)

    def test_simulated_seconds_sums(self, stats):
        stats.block_read(1)
        stats.charge_cpu(500)
        assert stats.simulated_seconds == pytest.approx(1e-3 + 5e-4)


class TestWaitPercent:
    def test_zero_when_idle(self, stats):
        assert stats.wait_percent == 0.0

    def test_pure_io_is_hundred(self, stats):
        stats.block_read(1)
        assert stats.wait_percent == 100.0

    def test_balanced(self, stats):
        stats.block_read(1)  # 1 ms
        stats.charge_cpu(1000)  # 1 ms
        assert stats.wait_percent == pytest.approx(50.0)


class TestMemoryAccounting:
    def test_allocate_release(self, stats):
        stats.allocate(600)
        assert stats.available_memory == 400
        stats.release(200)
        assert stats.available_memory == 600
        assert stats.peak_allocated == 600

    def test_available_never_negative(self, stats):
        stats.allocate(5000)
        assert stats.available_memory == 0

    def test_release_floor(self, stats):
        stats.release(100)
        assert stats.allocated == 0


class TestSampling:
    def test_sample_snapshot(self, stats):
        stats.block_read(2)
        stats.charge_cpu(100)
        stats.allocate(300)
        sample = stats.sample("midpoint")
        assert sample.label == "midpoint"
        assert sample.blocks_in == 2
        assert sample.wait_percent == stats.wait_percent
        assert sample.available_memory == 700
        assert stats.samples == [sample]

    def test_reset_clears_counters_not_model(self, stats):
        stats.block_read(1)
        stats.sample("x")
        stats.reset()
        assert stats.cumulative_blocks == 0
        assert stats.samples == []
        assert stats.model.block_seconds == 1e-3


class TestCostModelDefaults:
    def test_paper_era_defaults(self):
        model = CostModel()
        assert model.block_seconds == pytest.approx(1e-4)
        assert model.total_memory == 3_500_000_000
