"""The crash matrix: every failpoint, armed in turn, must never corrupt.

For each registered failpoint and each fault flavour the suite:

1. commits a document and closes the database cleanly (the baseline);
2. reopens, arms the failpoint, and stores a second document — which
   may "crash the process" (:class:`SimulatedCrash`) or fail with a
   coded storage error — then abandons the handle the way process
   death would (fds closed, lock released, nothing flushed);
3. reopens in fresh state and asserts the invariant: every committed
   document round-trips byte-identically, and the in-flight document
   is either fully present or cleanly absent — never half there;
4. runs ``fsck`` and asserts the recovered store is clean.

A final phase crashes *recovery itself* (failpoints during journal
replay) and asserts a second recovery still converges — replay is
idempotent.
"""

import pytest

from repro.errors import DocumentNotFoundError, StorageError
from repro.faults import FAULTS, KNOWN_FAILPOINTS, SimulatedCrash
from repro.storage import Database
from repro.storage.fsck import fsck
from repro.xmltree.parser import parse_forest

from tests.conftest import FIG1A

# Big enough that a flush batch spans several pages, so mid-apply
# failpoints (skip > 0) have later page writes to tear.
SECOND_DOC = "<data>" + "".join(
    f"<book><title>T{i}</title>"
    f"<author><name>A{i}</name></author>"
    f"<publisher><name>P{i}</name></publisher></book>"
    for i in range(40)
) + "</data>"


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.reset()
    yield
    FAULTS.reset()


def _canonical(source: str) -> str:
    return parse_forest(source).canonical()


def _commit_baseline(path: str) -> str:
    with Database(path) as db:
        db.store_document("committed", FIG1A)
    return _canonical(FIG1A)


def _store_under_fault(path: str, failpoint: str, action: str, skip: int = 0) -> bool:
    """Store a second document with one failpoint armed.

    Returns True when the fault fired (crash or coded error), False
    when the armed site was never hit by this operation.
    """
    db = Database(path)
    try:
        with FAULTS.armed(failpoint, action=action, skip=skip) as armed:
            try:
                db.store_document("inflight", SECOND_DOC)
                db.close()
                return armed.fired > 0
            except SimulatedCrash:
                db.abandon()
                return True
            except StorageError:
                # Injected "raise" fault: the app dies on the error.
                db.abandon()
                return True
    except SimulatedCrash:
        # Crash during Database.__init__ (e.g. replay of a prior batch).
        return True


def _assert_recovered(path: str, expected_committed: str) -> None:
    with Database(path) as db:
        names = db.document_names()
        assert "committed" in names, "a committed document vanished"
        assert db.load_forest("committed").canonical() == expected_committed
        # The in-flight document is all-or-nothing.
        if "inflight" in names:
            assert db.load_forest("inflight").canonical() == _canonical(SECOND_DOC)
        else:
            with pytest.raises(DocumentNotFoundError):
                db.describe("inflight")
    report = fsck(path)
    assert report.ok, f"fsck after recovery: {report.pretty()}"


@pytest.mark.parametrize("failpoint", KNOWN_FAILPOINTS)
@pytest.mark.parametrize("action", ["kill", "truncate", "raise"])
def test_crash_matrix_store(tmp_path, failpoint, action):
    path = str(tmp_path / "crash.db")
    expected = _commit_baseline(path)
    _store_under_fault(path, failpoint, action)
    _assert_recovered(path, expected)


@pytest.mark.parametrize("skip", [1, 3])
def test_crash_mid_apply_leaves_replayable_journal(tmp_path, skip):
    # Tear the in-place apply partway through the batch: the sealed
    # journal must bring every page back on reopen.
    path = str(tmp_path / "midapply.db")
    expected = _commit_baseline(path)
    fired = _store_under_fault(path, "flush.apply", "kill", skip=skip)
    assert fired
    _assert_recovered(path, expected)


@pytest.mark.parametrize("recovery_failpoint", ["pages.pwrite", "pages.fsync", "journal.unlink"])
def test_crash_during_recovery_is_idempotent(tmp_path, recovery_failpoint):
    # Crash once mid-flush (sealed journal on disk), then crash *again*
    # during the replay on reopen; the third open must still converge.
    path = str(tmp_path / "rec.db")
    expected = _commit_baseline(path)
    assert _store_under_fault(path, "flush.apply", "kill", skip=1)

    with FAULTS.armed(recovery_failpoint, action="kill"):
        with pytest.raises(SimulatedCrash):
            Database(path)
    _assert_recovered(path, expected)


def test_torn_journal_never_applied(tmp_path):
    # A truncate at journal.write leaves a torn journal; the main file
    # was never touched, so recovery quarantines the journal and the
    # committed document is intact.
    import os

    path = str(tmp_path / "torn.db")
    expected = _commit_baseline(path)
    assert _store_under_fault(path, "journal.write", "truncate")
    assert os.path.exists(path + ".journal")
    _assert_recovered(path, expected)
    assert not os.path.exists(path + ".journal")
    assert os.path.exists(path + ".journal.corrupt")


def test_double_open_is_locked(tmp_path):
    from repro.errors import DatabaseLockedError

    path = str(tmp_path / "locked.db")
    with Database(path) as db:
        db.store_document("committed", FIG1A)
        with pytest.raises(DatabaseLockedError) as excinfo:
            Database(path)
        assert excinfo.value.code == "XM520"
    # After a clean close the lock is free again.
    with Database(path) as again:
        assert again.document_names() == ["committed"]


def test_abandon_releases_lock_like_process_death(tmp_path):
    path = str(tmp_path / "abandon.db")
    db = Database(path)
    db.store_document("committed", FIG1A)
    db.abandon()
    with Database(path) as again:
        assert "committed" in again.document_names()


def test_batch_stream_parity_after_recovered_crash(tmp_path):
    # After a crash and recovery, the batch renderer and the streaming
    # renderer must still agree byte for byte.
    import io

    path = str(tmp_path / "parity.db")
    _commit_baseline(path)
    _store_under_fault(path, "flush.apply", "kill", skip=1)
    guard = "CAST MORPH book [ title author [ name ] ]"
    with Database(path) as db:
        batch = db.transform("committed", guard).xml()
        sink = io.StringIO()
        db.stream_transform("committed", guard, sink)
        assert sink.getvalue() == batch
