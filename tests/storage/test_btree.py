"""Tests for the B+tree, including a model-based property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.btree import MAX_ENTRY, BPlusTree
from repro.storage.pages import BufferPool, PagedFile
from repro.storage.stats import SystemStats


@pytest.fixture
def tree(tmp_path):
    file = PagedFile(str(tmp_path / "t.db"), SystemStats())
    yield BPlusTree(BufferPool(file, capacity=64))
    file.close()


class TestBasics:
    def test_get_missing(self, tree):
        assert tree.get(b"nope") is None
        assert b"nope" not in tree

    def test_put_get(self, tree):
        tree.put(b"k", b"v")
        assert tree.get(b"k") == b"v"
        assert b"k" in tree

    def test_replace(self, tree):
        tree.put(b"k", b"v1")
        tree.put(b"k", b"v2")
        assert tree.get(b"k") == b"v2"
        assert tree.count() == 1

    def test_delete(self, tree):
        tree.put(b"k", b"v")
        assert tree.delete(b"k")
        assert tree.get(b"k") is None
        assert not tree.delete(b"k")

    def test_empty_key_and_value(self, tree):
        tree.put(b"", b"")
        assert tree.get(b"") == b""

    def test_oversized_entry_rejected(self, tree):
        with pytest.raises(StorageError):
            tree.put(b"k", b"x" * (MAX_ENTRY + 1))


class TestScans:
    def test_scan_sorted(self, tree):
        for key in [b"m", b"a", b"z", b"b"]:
            tree.put(key, key)
        assert [k for k, _ in tree.scan()] == [b"a", b"b", b"m", b"z"]

    def test_scan_range(self, tree):
        for i in range(20):
            tree.put(f"k{i:02d}".encode(), b"v")
        keys = [k for k, _ in tree.scan(b"k05", b"k10")]
        assert keys == [f"k{i:02d}".encode() for i in range(5, 10)]

    def test_scan_prefix(self, tree):
        tree.put(b"Ta1", b"1")
        tree.put(b"Ta2", b"2")
        tree.put(b"Tb1", b"3")
        tree.put(b"U", b"4")
        assert [k for k, _ in tree.scan_prefix(b"Ta")] == [b"Ta1", b"Ta2"]
        assert [k for k, _ in tree.scan_prefix(b"T")] == [b"Ta1", b"Ta2", b"Tb1"]

    def test_prefix_at_byte_boundary(self, tree):
        tree.put(b"\xff\x01", b"a")
        tree.put(b"\xff\xff", b"b")
        assert len(list(tree.scan_prefix(b"\xff"))) == 2


class TestSplitting:
    def test_many_inserts_force_splits(self, tree):
        count = 2000
        for i in range(count):
            tree.put(f"key{i:06d}".encode(), f"value{i}".encode() * 3)
        assert tree.count() == count
        for i in range(0, count, 97):
            assert tree.get(f"key{i:06d}".encode()) == f"value{i}".encode() * 3

    def test_reverse_order_inserts(self, tree):
        for i in reversed(range(1000)):
            tree.put(f"k{i:05d}".encode(), b"v")
        keys = [k for k, _ in tree.scan()]
        assert keys == sorted(keys) and len(keys) == 1000

    def test_large_values_split_quickly(self, tree):
        blob = b"x" * 3000
        for i in range(50):
            tree.put(f"big{i:03d}".encode(), blob)
        assert all(tree.get(f"big{i:03d}".encode()) == blob for i in range(50))


class TestPersistence:
    def test_reopen(self, tmp_path):
        path = str(tmp_path / "p.db")
        stats = SystemStats()
        file = PagedFile(path, stats)
        tree = BPlusTree(BufferPool(file, capacity=32))
        for i in range(500):
            tree.put(f"k{i:04d}".encode(), f"v{i}".encode())
        tree.pool.flush()
        file.close()

        file = PagedFile(path, stats)
        again = BPlusTree(BufferPool(file, capacity=32))
        assert again.count() == 500
        assert again.get(b"k0123") == b"v123"
        file.close()

    def test_not_a_tree_file(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"\x00" * 4096)
        file = PagedFile(str(path), SystemStats())
        with pytest.raises(StorageError):
            BPlusTree(BufferPool(file))
        file.close()

    def test_small_buffer_pool_still_correct(self, tmp_path):
        """Thrashing pool: every access may hit disk, results identical."""
        file = PagedFile(str(tmp_path / "s.db"), SystemStats())
        tree = BPlusTree(BufferPool(file, capacity=3))
        for i in range(800):
            tree.put(f"k{i:04d}".encode(), f"v{i}".encode())
        assert tree.get(b"k0500") == b"v500"
        assert tree.count() == 800
        file.close()


class TestModelBased:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete"]),
                st.binary(min_size=0, max_size=20),
                st.binary(min_size=0, max_size=40),
            ),
            max_size=200,
        )
    )
    def test_matches_dict_model(self, tmp_path_factory, operations):
        tmp = tmp_path_factory.mktemp("bt")
        file = PagedFile(str(tmp / "m.db"), SystemStats())
        tree = BPlusTree(BufferPool(file, capacity=8))
        model: dict[bytes, bytes] = {}
        try:
            for action, key, value in operations:
                if action == "put":
                    tree.put(key, value)
                    model[key] = value
                else:
                    assert tree.delete(key) == (key in model)
                    model.pop(key, None)
            assert dict(tree.scan()) == model
            for key, value in model.items():
                assert tree.get(key) == value
        finally:
            file.close()
