"""Read-only page frames are mmap-backed: zero-copy, still checksummed.

A ``PagedFile`` opened ``readonly=True`` maps the file and serves
``read_page`` as ``memoryview`` slices into the mapping — no per-page
copy, and forked serve workers share the hot pages through the OS page
cache.  The map must change *nothing* observable: bytes identical to
the pread path, CRC32C still verified (once per page per open), and
writer handles untouched.
"""

import mmap

import pytest

from repro.errors import ChecksumError
from repro.storage.pages import PAGE_SIZE, SLOT_SIZE, BufferPool, PagedFile
from repro.storage.stats import SystemStats
from repro.storage.database import Database

from tests.conftest import FIG1A


@pytest.fixture
def written(tmp_path):
    """A three-page file written through the ordinary writer path."""
    path = str(tmp_path / "m.db")
    file = PagedFile(path, SystemStats())
    payloads = []
    for value in (3, 5, 7):
        page = file.allocate()
        payload = bytes([value]) * PAGE_SIZE
        file.write_page(page, payload)
        payloads.append(payload)
    file.close()
    return path, payloads


class TestMappedReads:
    def test_readonly_pages_are_memoryviews_into_the_map(self, written):
        path, payloads = written
        file = PagedFile(path, SystemStats(), readonly=True)
        try:
            assert file._mmap is not None
            for page_id, payload in enumerate(payloads):
                view = file.read_page(page_id)
                assert isinstance(view, memoryview)
                assert len(view) == PAGE_SIZE
                assert bytes(view) == payload
        finally:
            file.close()

    def test_writable_handle_still_copies(self, written):
        path, payloads = written
        file = PagedFile(path, SystemStats())
        try:
            page = file.read_page(0)
            assert isinstance(page, bytearray)
            assert bytes(page) == payloads[0]
        finally:
            file.close()

    def test_mapped_and_pread_bytes_identical(self, written):
        path, _ = written
        ro = PagedFile(path, SystemStats(), readonly=True)
        rw = PagedFile(path, SystemStats())
        try:
            for page_id in range(ro.page_count):
                assert bytes(ro.read_page(page_id)) == bytes(rw.read_page(page_id))
        finally:
            ro.close()
            rw.close()

    def test_crc_verified_through_the_map(self, written):
        path, _ = written
        with open(path, "r+b") as handle:
            handle.seek(1 * SLOT_SIZE + 99)
            handle.write(b"\xff")
        file = PagedFile(path, SystemStats(), readonly=True)
        try:
            file.read_page(0)  # intact neighbors still read fine
            file.read_page(2)
            with pytest.raises(ChecksumError) as excinfo:
                file.read_page(1)
            assert excinfo.value.code == "XM510"
            assert file.stats.events["pages.checksum_failures"] == 1
        finally:
            file.close()

    def test_crc_checked_once_per_page_per_open(self, written):
        path, _ = written
        file = PagedFile(path, SystemStats(), readonly=True)
        try:
            file.read_page(0)
            assert 0 in file._verified
            file.read_page(0)  # second read skips the CRC pass
            assert file.stats.events.get("pages.checksum_failures", 0) == 0
        finally:
            file.close()

    def test_close_releases_map_despite_cached_views(self, written):
        path, _ = written
        file = PagedFile(path, SystemStats(), readonly=True)
        pool = BufferPool(file, capacity=8)
        pool.get(0)
        pool.get(1)
        # Views are still resident in the pool; close() must not raise
        # (BufferError from the exported buffers is swallowed, the fd
        # is released either way).
        file.close()

    def test_empty_file_skips_mapping(self, tmp_path):
        path = str(tmp_path / "empty.db")
        PagedFile(path, SystemStats()).close()  # creates a zero-page file
        file = PagedFile(path, SystemStats(), readonly=True)
        try:
            assert file._mmap is None
            assert file.page_count == 0
        finally:
            file.close()


class TestDatabaseOverMap:
    def test_reader_and_writer_render_identically(self, tmp_path):
        path = str(tmp_path / "d.db")
        guard = "MORPH author [ name ]"
        with Database(path, durable=False) as writer:
            writer.store_document("doc", FIG1A)
            expected = writer.transform("doc", guard).xml()
        with Database(path, mode="r", durable=False) as reader:
            assert reader._file._mmap is not None
            assert reader.transform("doc", guard).xml() == expected

    def test_reader_close_with_resident_pages(self, tmp_path):
        path = str(tmp_path / "d.db")
        with Database(path, durable=False) as writer:
            writer.store_document("doc", FIG1A)
        reader = Database(path, mode="r", durable=False)
        reader.transform("doc", "MORPH author [ name ]")
        assert reader.pool.resident > 0
        reader.close()  # drops the cache, then unmaps — no BufferError

    def test_map_is_shared_not_copied(self, written):
        path, _ = written
        file = PagedFile(path, SystemStats(), readonly=True)
        try:
            view = file.read_page(0)
            base = view.obj
            assert isinstance(base, mmap.mmap)
        finally:
            file.close()
