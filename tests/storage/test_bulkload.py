"""Tests for B+tree bulk loading."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.btree import BPlusTree
from repro.storage.pages import BufferPool, PagedFile
from repro.storage.stats import SystemStats


def fresh_pool(tmp_path, name="bulk.db", capacity=64):
    file = PagedFile(str(tmp_path / name), SystemStats())
    return BufferPool(file, capacity=capacity), file


class TestBulkLoad:
    def test_roundtrip(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        items = [(f"k{i:05d}".encode(), f"v{i}".encode()) for i in range(3000)]
        tree = BPlusTree.bulk_load(pool, items)
        assert tree.count() == 3000
        assert tree.get(b"k01234") == b"v1234"
        assert dict(tree.scan()) == dict(items)
        file.close()

    def test_empty_input(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        tree = BPlusTree.bulk_load(pool, [])
        assert tree.count() == 0
        assert tree.get(b"x") is None
        file.close()

    def test_single_entry(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        tree = BPlusTree.bulk_load(pool, [(b"only", b"one")])
        assert tree.get(b"only") == b"one"
        file.close()

    def test_writable_afterwards(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        items = [(f"k{i:04d}".encode(), b"v") for i in range(500)]
        tree = BPlusTree.bulk_load(pool, items)
        tree.put(b"k0250x", b"inserted")
        tree.put(b"a-first", b"prepended")
        assert tree.get(b"k0250x") == b"inserted"
        assert tree.get(b"a-first") == b"prepended"
        keys = [k for k, _ in tree.scan()]
        assert keys == sorted(keys)
        file.close()

    def test_persists_across_reopen(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        BPlusTree.bulk_load(pool, [(b"k", b"v")])
        pool.flush()
        file.close()
        file = PagedFile(str(tmp_path / "bulk.db"), SystemStats())
        again = BPlusTree(BufferPool(file))
        assert again.get(b"k") == b"v"
        file.close()

    def test_rejects_unsorted(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        with pytest.raises(StorageError):
            BPlusTree.bulk_load(pool, [(b"b", b""), (b"a", b"")])
        file.close()

    def test_rejects_duplicates(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        with pytest.raises(StorageError):
            BPlusTree.bulk_load(pool, [(b"a", b""), (b"a", b"")])
        file.close()

    def test_rejects_used_file(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        BPlusTree(pool)  # initializes pages
        with pytest.raises(StorageError):
            BPlusTree.bulk_load(pool, [])
        file.close()

    def test_large_values_pack_few_per_page(self, tmp_path):
        pool, file = fresh_pool(tmp_path)
        blob = b"x" * 3000
        items = [(f"k{i:03d}".encode(), blob) for i in range(40)]
        tree = BPlusTree.bulk_load(pool, items)
        assert all(tree.get(k) == blob for k, _ in items)
        file.close()

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.binary(min_size=1, max_size=16), st.binary(max_size=64), max_size=200))
    def test_matches_put_loop(self, tmp_path_factory, mapping):
        tmp = tmp_path_factory.mktemp("bl")
        items = sorted(mapping.items())

        pool_a, file_a = fresh_pool(tmp, "a.db")
        bulk = BPlusTree.bulk_load(pool_a, items)

        pool_b, file_b = fresh_pool(tmp, "b.db")
        loop = BPlusTree(pool_b)
        for key, value in items:
            loop.put(key, value)

        assert list(bulk.scan()) == list(loop.scan())
        file_a.close()
        file_b.close()
