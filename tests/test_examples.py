"""Smoke tests: every example must run cleanly and show its key output."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "NO RESULTS" in out  # the unguarded query fails on (a)/(b)
        assert out.count("<result>") >= 5  # guarded query works everywhere
        assert "strongly-typed" in out

    def test_schema_evolution(self):
        out = run_example("schema_evolution.py")
        assert "v1 (denormalized)" in out and "v2 (normalized)" in out
        # Same facts on both versions; v1's grouping is per book (the
        # paper: results differ "only in the grouping"), v2's per author.
        assert out.count("Codd") >= 3
        assert "2 book(s)" in out
        assert "guard type:" in out

    def test_information_loss(self):
        out = run_example("information_loss.py")
        assert "BLOCKED" in out
        assert "ALLOWED" in out
        assert "widening" in out and "narrowing" in out
        assert "synthesized types: ['isbn']" in out

    def test_bibliography_database(self):
        out = run_example("bibliography_database.py")
        assert "blocks read during compile: 0" in out
        assert "vmstat analog" in out

    def test_data_integration(self):
        out = run_example("data_integration.py")
        assert "unified price report" in out
        assert "Transaction Processing : 55" in out  # north's price
        assert "Transaction Processing : 49" in out  # south's price
        assert "Transaction Processing: 49" in out  # cheapest wins

    def test_astronomy_catalog(self):
        out = run_example("astronomy_catalog.py")
        assert "<!ELEMENT datasets (dataset+)>" in out
        assert "guard type: strongly-typed" in out
        assert "streamed" in out
        assert "for $v1 in /datasets/dataset" in out
        assert "loses 0.0%" in out


EVOLUTIONS = os.path.join(EXAMPLES, "evolutions")
SCENARIOS = sorted(
    entry
    for entry in os.listdir(EVOLUTIONS)
    if os.path.isdir(os.path.join(EVOLUTIONS, entry))
)


class TestEvolutionCorpus:
    """Every corpus scenario's verdicts must match its expected.json."""

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_verdicts_match_expectations(self, scenario):
        import json

        from repro.analysis.evolve import analyze_evolution, load_guards

        root = os.path.join(EVOLUTIONS, scenario)
        with open(os.path.join(root, "old.xml")) as handle:
            old_xml = handle.read()
        with open(os.path.join(root, "new.xml")) as handle:
            new_xml = handle.read()
        with open(os.path.join(root, "expected.json")) as handle:
            expected = json.load(handle)
        guards = load_guards(os.path.join(root, "guards"))
        assert guards, f"{scenario} has no guards"
        report = analyze_evolution(old_xml, new_xml, guards)
        actual = {verdict.name: verdict.verdict for verdict in report.verdicts}
        assert actual == expected

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_cli_expect_mode(self, scenario):
        from repro.cli import main

        root = os.path.join(EVOLUTIONS, scenario)
        assert (
            main(
                [
                    "evolve",
                    os.path.join(root, "old.xml"),
                    os.path.join(root, "new.xml"),
                    "--guards",
                    os.path.join(root, "guards"),
                    "--format=json",
                    "--expect",
                    os.path.join(root, "expected.json"),
                ]
            )
            == 0
        )

    def test_corpus_covers_all_three_verdicts(self):
        import json

        seen = set()
        for scenario in SCENARIOS:
            with open(os.path.join(EVOLUTIONS, scenario, "expected.json")) as handle:
                seen.update(json.load(handle).values())
        assert seen == {"compatible", "degraded", "broken"}
