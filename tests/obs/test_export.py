"""Tests for the trace exporters: tree rendering and JSONL round trip."""

import json

from repro import obs
from repro.obs.export import from_json_lines, render_tree, to_json_lines


def traced_run() -> obs.Tracer:
    tracer = obs.Tracer()
    with tracer.span("pipeline.compile", guard="MORPH a"):
        with tracer.span("lang.parse"):
            pass
        with tracer.span("typing.type-analysis") as analysis:
            analysis.annotate(types=3)
    with tracer.span("pipeline.render"):
        tracer.count("render.nodes_emitted", 12)
        tracer.observe("join.pairs", 4.0)
        tracer.gauge("buffer.hit_ratio", 0.75)
    return tracer


class TestRenderTree:
    def test_tree_structure_and_metrics(self):
        text = render_tree(traced_run())
        lines = text.splitlines()
        assert lines[0].startswith("pipeline.compile")
        assert "[guard=MORPH a]" in lines[0]
        assert lines[1].startswith("  lang.parse")
        assert lines[2].startswith("  typing.type-analysis")
        assert any(line.startswith("pipeline.render") for line in lines)
        assert "render.nodes_emitted = 12" in text
        assert "buffer.hit_ratio = 0.75" in text
        assert "join.pairs: count=1" in text

    def test_empty_tracer_renders_empty(self):
        assert render_tree(obs.Tracer()) == ""


class TestJsonLines:
    def test_every_line_is_valid_json(self):
        for line in to_json_lines(traced_run()).splitlines():
            json.loads(line)

    def test_header_and_record_types(self):
        records = [json.loads(line) for line in to_json_lines(traced_run()).splitlines()]
        assert records[0] == {"type": "trace", "version": 2}
        kinds = [record["type"] for record in records]
        assert kinds.count("span") == 4
        assert kinds[-1] == "metrics"

    def test_round_trip_preserves_structure(self):
        tracer = traced_run()
        trace = from_json_lines(to_json_lines(tracer))
        assert [root.name for root in trace.roots] == [
            "pipeline.compile",
            "pipeline.render",
        ]
        compile_record = trace.roots[0]
        assert [child.name for child in compile_record.children] == [
            "lang.parse",
            "typing.type-analysis",
        ]
        assert compile_record.attrs == {"guard": "MORPH a"}
        assert compile_record.children[1].attrs == {"types": 3}

    def test_round_trip_preserves_timings(self):
        tracer = traced_run()
        trace = from_json_lines(to_json_lines(tracer))
        live = tracer.roots[0]
        loaded = trace.roots[0]
        assert loaded.duration == live.duration
        assert loaded.start == 0.0  # starts are relative to the trace epoch
        child = loaded.children[0]
        assert child.start >= 0.0

    def test_round_trip_preserves_metrics(self):
        tracer = traced_run()
        trace = from_json_lines(to_json_lines(tracer))
        assert trace.metrics.as_dict() == tracer.metrics.as_dict()

    def test_trace_record_find(self):
        trace = from_json_lines(to_json_lines(traced_run()))
        assert trace.find("lang.parse").name == "lang.parse"
        assert trace.find("absent") is None
        assert "typing.type-analysis" in trace.span_names()

    def test_write_json_lines(self, tmp_path):
        path = obs.write_json_lines(traced_run(), str(tmp_path / "trace.jsonl"))
        content = open(path).read()
        assert content.endswith("\n")
        assert from_json_lines(content).find("pipeline.render") is not None
