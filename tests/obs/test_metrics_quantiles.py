"""Histogram bucketing and quantile estimation (obs.metrics)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    estimate_quantile,
)


class TestBucketBounds:
    def test_four_per_decade_from_micro_to_mega(self):
        assert len(BUCKET_BOUNDS) == 49
        assert math.isclose(BUCKET_BOUNDS[0], 1e-6)
        assert math.isclose(BUCKET_BOUNDS[-1], 1e6)

    def test_strictly_increasing(self):
        assert all(a < b for a, b in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]))


class TestEmptyHistogram:
    def test_quantiles_are_none(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.p50 is None
        assert histogram.p95 is None
        assert histogram.p99 is None
        assert histogram.mean == 0.0

    def test_estimate_quantile_empty_counts(self):
        assert estimate_quantile([0] * (len(BUCKET_BOUNDS) + 1), 0.5) is None


class TestSingleObservation:
    def test_every_quantile_is_the_observation(self):
        histogram = Histogram()
        histogram.observe(0.0123)
        # min/max clamping makes a single sample come back exactly.
        assert histogram.p50 == 0.0123
        assert histogram.p95 == 0.0123
        assert histogram.p99 == 0.0123
        assert histogram.minimum == histogram.maximum == 0.0123
        assert histogram.count == 1

    def test_zero_lands_in_first_bucket(self):
        histogram = Histogram()
        histogram.observe(0.0)
        assert histogram.buckets[0] == 1
        assert histogram.p50 == 0.0


class TestOverflowBucket:
    def test_above_top_bound_goes_to_overflow(self):
        histogram = Histogram()
        histogram.observe(5e6)  # past the 1e6 top bound
        assert histogram.buckets[-1] == 1
        assert sum(histogram.buckets[:-1]) == 0

    def test_overflow_quantile_clamped_to_observed_max(self):
        histogram = Histogram()
        for value in (2e6, 3e6, 9e6):
            histogram.observe(value)
        assert histogram.p99 <= 9e6
        assert histogram.p50 >= 2e6


class TestMergeAndSerialization:
    def test_merge_adds_buckets_and_widens_range(self):
        left, right = Histogram(), Histogram()
        left.observe(0.001)
        right.observe(10.0)
        left.merge(right)
        assert left.count == 2
        assert left.minimum == 0.001
        assert left.maximum == 10.0
        assert sum(left.buckets) == 2

    def test_dict_round_trip_preserves_quantiles(self):
        histogram = Histogram()
        for value in (0.001, 0.01, 0.1, 1.0, 10.0):
            histogram.observe(value)
        clone = Histogram.from_dict(histogram.as_dict())
        assert clone.buckets == histogram.buckets
        assert clone.p50 == histogram.p50
        assert clone.p95 == histogram.p95

    def test_registry_merge_combines_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("latency", 0.1)
        b.observe("latency", 0.2)
        a.merge(b)
        assert a.histogram("latency").count == 2


class TestQuantileProperties:
    @given(
        st.lists(
            st.floats(min_value=1e-7, max_value=1e7, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_quantiles_monotone_and_within_range(self, samples):
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        quantiles = [histogram.quantile(q) for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0)]
        assert all(q is not None for q in quantiles)
        # Monotone non-decreasing in q...
        assert all(a <= b + 1e-12 for a, b in zip(quantiles, quantiles[1:]))
        # ...and clamped to the observed range.
        assert quantiles[0] >= min(samples) - 1e-12
        assert quantiles[-1] <= max(samples) + 1e-12

    @given(st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_single_sample_identity(self, value):
        histogram = Histogram()
        histogram.observe(value)
        assert histogram.quantile(0.5) == value
