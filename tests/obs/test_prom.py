"""Prometheus text exposition: renderer, escaping, parse round trip."""

import math

from repro.obs.metrics import BUCKET_BOUNDS, Histogram
from repro.obs.prom import (
    escape_help,
    escape_label_value,
    format_value,
    histogram_buckets,
    metric_name,
    parse_prometheus,
    render_prometheus,
    sample_value,
)


class TestNames:
    def test_dots_become_underscores_with_prefix(self):
        assert metric_name("serve.request_seconds") == "xmorph_serve_request_seconds"
        assert metric_name("serve.errors.XM540") == "xmorph_serve_errors_XM540"

    def test_illegal_characters_sanitized(self):
        assert metric_name("a-b c") == "xmorph_a_b_c"

    def test_no_prefix(self):
        assert metric_name("x.y", prefix="") == "x_y"


class TestEscaping:
    def test_help_escapes_backslash_and_newline(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_label_value_escapes_quote_too(self):
        assert escape_label_value('say "hi"\n') == 'say \\"hi\\"\\n'

    def test_escaped_labels_round_trip_through_parser(self):
        text = render_prometheus(
            {"serve.requests": 3}, labels={"database": 'we"ird\\path\n'}
        )
        samples = parse_prometheus(text)
        labels = next(iter(samples["xmorph_serve_requests_total"]))
        assert dict(labels)["database"] == 'we"ird\\path\n'


class TestFormatValue:
    def test_integers_render_bare(self):
        assert format_value(3.0) == "3"

    def test_infinities_and_nan(self):
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestRenderer:
    def test_counter_gets_total_suffix_and_help(self):
        text = render_prometheus({"serve.requests": 7})
        assert "# TYPE xmorph_serve_requests_total counter" in text
        assert "# HELP xmorph_serve_requests_total" in text
        assert "xmorph_serve_requests_total 7" in text

    def test_empty_histogram_emits_only_inf_bucket(self):
        text = render_prometheus({}, histograms={"serve.request_seconds": Histogram()})
        assert 'xmorph_serve_request_seconds_bucket{le="+Inf"} 0' in text
        assert "xmorph_serve_request_seconds_count 0" in text
        # No finite buckets for an empty histogram.
        assert text.count("_bucket{") == 1

    def test_single_observation_buckets_cumulative(self):
        histogram = Histogram()
        histogram.observe(0.005)
        text = render_prometheus({}, histograms={"latency": Histogram.from_dict(histogram.as_dict())})
        samples = parse_prometheus(text)
        buckets = histogram_buckets(samples, "xmorph_latency")
        # Exactly one observation: every emitted bucket at or above the
        # observation's bound is 1, and +Inf equals the count.
        assert buckets[-1] == (float("inf"), 1.0)
        finite = [count for le, count in buckets if le != float("inf")]
        assert finite and finite[-1] == 1.0
        assert sample_value(samples, "xmorph_latency_count") == 1.0

    def test_overflow_only_histogram(self):
        histogram = Histogram()
        histogram.observe(5e6)  # past the top bound -> overflow bucket
        text = render_prometheus({}, histograms={"latency": histogram})
        samples = parse_prometheus(text)
        buckets = histogram_buckets(samples, "xmorph_latency")
        # The overflow observation appears only in +Inf.
        assert buckets[-1] == (float("inf"), 1.0)
        assert all(count == 0.0 for le, count in buckets if le != float("inf"))
        assert sample_value(samples, "xmorph_latency_sum") == 5e6

    def test_interior_zero_buckets_kept_for_quantile_math(self):
        histogram = Histogram()
        histogram.observe(1e-3)
        histogram.observe(1e0)
        text = render_prometheus({}, histograms={"latency": histogram})
        samples = parse_prometheus(text)
        buckets = histogram_buckets(samples, "xmorph_latency")
        finite = [le for le, _ in buckets if le != float("inf")]
        # Everything between the two populated bounds is emitted, so a
        # scrape-side diff sees the zeros between them.
        lower = min(i for i, b in enumerate(BUCKET_BOUNDS) if b >= 1e-3)
        upper = min(i for i, b in enumerate(BUCKET_BOUNDS) if b >= 1e0)
        assert len(finite) == upper - lower + 1

    def test_gauge_type_line(self):
        text = render_prometheus({}, gauges={"buffer.hit_ratio": 0.75})
        assert "# TYPE xmorph_buffer_hit_ratio gauge" in text
        assert "xmorph_buffer_hit_ratio 0.75" in text


class TestParseRoundTrip:
    def test_full_round_trip(self):
        histogram = Histogram()
        for value in (0.001, 0.02, 0.02, 0.3):
            histogram.observe(value)
        text = render_prometheus(
            {"serve.requests": 11, "serve.errors.XM540": 2},
            gauges={"serve.pending": 3.0},
            histograms={"serve.request_seconds": histogram},
            labels={"database": "bib.db"},
        )
        samples = parse_prometheus(text)
        assert sample_value(samples, "xmorph_serve_requests_total") == 11.0
        assert sample_value(samples, "xmorph_serve_errors_XM540_total") == 2.0
        assert sample_value(samples, "xmorph_serve_pending") == 3.0
        assert sample_value(samples, "xmorph_serve_request_seconds_count") == 4.0
        assert math.isclose(
            sample_value(samples, "xmorph_serve_request_seconds_sum"),
            sum((0.001, 0.02, 0.02, 0.3)),
        )
        buckets = histogram_buckets(samples, "xmorph_serve_request_seconds")
        assert buckets[-1] == (float("inf"), 4.0)
        cumulative = [count for _le, count in buckets]
        assert cumulative == sorted(cumulative), "buckets must be cumulative"

    def test_parser_skips_comments_and_garbage(self):
        text = "# HELP x y\n# TYPE x counter\nnot a sample !!\nx_total 4\n"
        samples = parse_prometheus(text)
        assert sample_value(samples, "x_total") == 4.0
        assert len(samples) == 1
