"""Tests for the span tracer: nesting, disabled no-op mode, metrics."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner", "sibling"]
        assert [child.name for child in outer.children[0].children] == ["leaf"]

    def test_sequential_roots(self):
        tracer = obs.Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_monotonic(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0

    def test_annotate_and_attrs(self):
        tracer = obs.Tracer()
        with tracer.span("work", phase="render") as span:
            span.annotate(rows=7)
        assert span.attrs == {"phase": "render", "rows": 7}

    def test_exception_still_closes_span(self):
        tracer = obs.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("fails"):
                raise ValueError("boom")
        assert [root.name for root in tracer.roots] == ["fails"]
        assert tracer.roots[0].ended is not None

    def test_find_and_span_names(self):
        tracer = obs.Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.find("b").name == "b"
        assert tracer.find("zzz") is None
        assert tracer.span_names() == ["a", "b"]


class TestDisabledMode:
    def test_default_tracer_is_disabled(self):
        assert obs.get_tracer().enabled is False

    def test_disabled_span_records_nothing(self):
        tracer = obs.Tracer(enabled=False)
        with tracer.span("invisible"):
            pass
        assert tracer.roots == []
        assert not tracer.metrics

    def test_disabled_span_still_times(self):
        """Coarse call sites rely on durations even when disabled
        (``render_seconds`` must stay populated)."""
        tracer = obs.Tracer(enabled=False)
        with tracer.span("timed") as span:
            sum(range(1000))
        assert span.duration > 0.0

    def test_disabled_metrics_are_noops(self):
        tracer = obs.Tracer(enabled=False)
        tracer.count("c", 5)
        tracer.observe("h", 1.0)
        tracer.gauge("g", 2.0)
        assert not tracer.metrics

    def test_module_level_calls_default_to_noop(self):
        obs.count("module.counter", 3)
        obs.observe("module.histogram", 1.5)
        assert not obs.get_tracer().metrics
        assert obs.enabled() is False


class TestCurrentTracer:
    def test_tracing_installs_and_restores(self):
        before = obs.get_tracer()
        with obs.tracing() as tracer:
            assert obs.get_tracer() is tracer
            assert tracer.enabled
            with obs.span("via-module"):
                obs.count("hits", 2)
        assert obs.get_tracer() is before
        assert tracer.span_names() == ["via-module"]
        assert tracer.metrics.counter("hits") == 2

    def test_tracing_restores_on_error(self):
        before = obs.get_tracer()
        with pytest.raises(RuntimeError):
            with obs.tracing():
                raise RuntimeError
        assert obs.get_tracer() is before

    def test_set_tracer_returns_previous(self):
        mine = obs.Tracer()
        previous = obs.set_tracer(mine)
        try:
            assert obs.get_tracer() is mine
        finally:
            obs.set_tracer(previous)


class TestMetricsAggregation:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("btree.page_reads")
        registry.inc("btree.page_reads", 4)
        assert registry.counter("btree.page_reads") == 5
        assert registry.counter("absent") == 0

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (2.0, 8.0, 5.0):
            registry.observe("join.pairs", value)
        histogram = registry.histogram("join.pairs")
        assert histogram.count == 3
        assert histogram.total == 15.0
        assert histogram.minimum == 2.0
        assert histogram.maximum == 8.0
        assert histogram.mean == pytest.approx(5.0)

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("buffer.hit_ratio", 0.5)
        registry.gauge("buffer.hit_ratio", 0.9)
        assert registry.gauges["buffer.hit_ratio"] == 0.9

    def test_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("c", 2)
        right.inc("c", 3)
        right.inc("only-right")
        left.observe("h", 1.0)
        right.observe("h", 9.0)
        right.gauge("g", 7.0)
        left.merge(right)
        assert left.counter("c") == 5
        assert left.counter("only-right") == 1
        histogram = left.histogram("h")
        assert histogram.count == 2
        assert histogram.minimum == 1.0 and histogram.maximum == 9.0
        assert left.gauges["g"] == 7.0

    def test_dict_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.observe("h", 3.5)
        registry.gauge("g", 0.25)
        clone = MetricsRegistry.from_dict(registry.as_dict())
        assert clone.as_dict() == registry.as_dict()

    def test_reset_clears_everything(self):
        tracer = obs.Tracer()
        with tracer.span("s"):
            tracer.count("c")
        tracer.reset()
        assert tracer.roots == []
        assert not tracer.metrics
