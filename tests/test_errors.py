"""Error-surface tests: every failure mode raises the right exception
with an actionable message."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "cls",
        [
            errors.XmlParseError,
            errors.GuardSyntaxError,
            errors.TypeAnalysisError,
            errors.LabelMismatchError,
            errors.GuardTypeError,
            errors.RenderError,
            errors.QueryError,
            errors.QuerySyntaxError,
            errors.StorageError,
            errors.PageError,
            errors.DocumentNotFoundError,
        ],
    )
    def test_all_derive_from_base(self, cls):
        assert issubclass(cls, errors.XMorphError)

    def test_catch_all(self, fig1a):
        with pytest.raises(errors.XMorphError):
            repro.transform(fig1a, "MORPH [")


class TestMessages:
    def test_xml_parse_location(self):
        with pytest.raises(errors.XmlParseError) as info:
            repro.parse_document("<a>\n<b>\n</a>")
        assert "line 3" in str(info.value)

    def test_guard_syntax_line_column(self):
        with pytest.raises(errors.GuardSyntaxError) as info:
            repro.parse_guard("MORPH author ]")
        assert "line 1, column 14" in str(info.value)
        assert info.value.position == 13
        assert info.value.span is not None
        assert info.value.span.column == 14

    def test_guard_syntax_multiline_line_column(self):
        with pytest.raises(errors.GuardSyntaxError) as info:
            repro.parse_guard("MORPH author [\n  name\n  {")
        assert "line 3, column 3" in str(info.value)

    def test_query_syntax_line_column(self):
        with pytest.raises(errors.QuerySyntaxError) as info:
            repro.parse_query("for $a in /author\nreturn $$x")
        message = str(info.value)
        assert "line 2" in message
        assert "offset" not in message

    def test_label_mismatch_names_label_and_fix(self, fig1a):
        with pytest.raises(errors.LabelMismatchError) as info:
            repro.transform(fig1a, "MORPH zebra")
        message = str(info.value)
        assert "zebra" in message
        assert "TYPE-FILL" in message  # tells the user the escape hatch

    def test_guard_type_error_names_verdict_and_fix(self, fig1c):
        with pytest.raises(errors.GuardTypeError) as info:
            repro.transform(fig1c, "MORPH author [ title publisher ]")
        message = str(info.value)
        assert "widening" in message
        assert "CAST-WIDENING" in message
        assert info.value.report is not None
        assert info.value.report.findings

    def test_query_error_names_function(self, fig1a):
        from repro.xquery import evaluate, QueryContext

        with pytest.raises(errors.QueryError) as info:
            evaluate("bogus(1)", QueryContext.for_forest(fig1a))
        assert "bogus" in str(info.value)

    def test_document_not_found_names_document(self, tmp_path):
        from repro.storage import Database

        with Database(str(tmp_path / "x.db")) as db:
            with pytest.raises(errors.DocumentNotFoundError) as info:
                db.describe("missing")
        assert "missing" in str(info.value)

    def test_page_error_names_range(self, tmp_path):
        from repro.storage.pages import PagedFile
        from repro.storage.stats import SystemStats

        file = PagedFile(str(tmp_path / "p.db"), SystemStats())
        with pytest.raises(errors.PageError) as info:
            file.read_page(5)
        assert "5" in str(info.value)
        file.close()

    def test_entry_too_large_names_sizes(self, tmp_path):
        from repro.storage.btree import BPlusTree
        from repro.storage.pages import BufferPool, PagedFile
        from repro.storage.stats import SystemStats

        file = PagedFile(str(tmp_path / "t.db"), SystemStats())
        tree = BPlusTree(BufferPool(file))
        with pytest.raises(errors.StorageError) as info:
            tree.put(b"k", b"x" * 10000)
        assert "bytes" in str(info.value)
        file.close()
