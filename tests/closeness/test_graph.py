"""Tests for brute-force closest graphs (Definitions 1, 2, 5)."""

from repro.closeness import closest_graph, ClosestGraph
from repro.xmltree import Dewey, parse_document


def edge(a: str, b: str) -> frozenset:
    return frozenset((Dewey.parse(a), Dewey.parse(b)))


class TestFig1AGraph:
    def test_vertices_cover_forest(self, fig1a):
        graph = closest_graph(fig1a)
        assert len(graph.vertices) == fig1a.node_count()

    def test_within_book_edges_present(self, fig1a):
        graph = closest_graph(fig1a)
        # publisher 1.1.3 closest to title 1.1.1 (the paper's example) ...
        assert edge("1.1.3", "1.1.1") in graph.edges
        # ... but not to the other book's title 1.2.1.
        assert edge("1.1.3", "1.2.1") not in graph.edges

    def test_no_same_type_edges(self, fig1a):
        graph = closest_graph(fig1a)
        assert edge("1.1", "1.2") not in graph.edges  # book-book
        assert edge("1.1.1", "1.2.1") not in graph.edges  # title-title

    def test_parent_child_edges(self, fig1a):
        graph = closest_graph(fig1a)
        assert edge("1.1", "1.1.2") in graph.edges  # book-author
        assert edge("1.1.2", "1.1.2.1") in graph.edges  # author-name

    def test_edge_count(self, fig1a):
        # 12 data-to-X edges + 15 type pairs x 2 books.
        graph = closest_graph(fig1a)
        assert graph.edge_count() == 42


class TestGroupedInstance:
    def test_author_groups_both_books(self, fig1c):
        graph = closest_graph(fig1c)
        # The single author (1.1) is closest to both books.
        assert edge("1.1", "1.1.2") in graph.edges
        assert edge("1.1", "1.1.3") in graph.edges

    def test_title_publisher_stay_per_book(self, fig1c):
        graph = closest_graph(fig1c)
        assert edge("1.1.2.1", "1.1.2.2") in graph.edges  # X with W's publisher
        assert edge("1.1.2.1", "1.1.3.2") not in graph.edges  # X with V's


class TestSubsetRelation:
    def test_subset_of_self(self, fig1a):
        graph = closest_graph(fig1a)
        assert graph <= graph
        assert graph == closest_graph(fig1a)

    def test_smaller_graph_is_subset(self):
        full = closest_graph(parse_document("<r><a/><b/></r>"))
        small = ClosestGraph(set(list(full.vertices)[:1]), set())
        assert small <= full
        assert not full <= small

    def test_diagnostics(self):
        first = ClosestGraph({1, 2, 3}, {frozenset((1, 2)), frozenset((2, 3))})
        second = ClosestGraph({1, 2}, {frozenset((1, 2))})
        assert first.lost_vertices(second) == {3}
        assert first.lost_edges(second) == {frozenset((2, 3))}
        assert second.added_edges(first) == {frozenset((2, 3))}


class TestProvenanceKeys:
    def test_key_function_merges_duplicates(self):
        forest = parse_document("<r><a/><a/></r>")
        graph = closest_graph(forest, key=lambda node: node.name)
        assert graph.vertices == {"r", "a"}
        assert graph.edges == {frozenset(("r", "a"))}
