"""Tests for the document index: type distances and closest pairs.

The brute-force closest graph is the ground truth; the index must agree
with it on every input, including random forests (property tests).
"""

from hypothesis import given, settings

from repro.closeness import DocumentIndex, closest_graph
from repro.shape.cardinality import Card
from repro.shape.shape import Shape
from repro.shape.types import ShapeType
from repro.xmltree import parse_document

from tests.strategies import documents


def data_type(index, dotted):
    for t in index.types():
        if t.dotted == dotted:
            return t
    raise AssertionError(f"no type {dotted}")


class TestTypeDistanceFig1:
    def test_sibling_types(self, fig1a):
        index = DocumentIndex(fig1a)
        publisher = data_type(index, "data.book.publisher")
        title = data_type(index, "data.book.title")
        # Section VII: "The (minimal) type distance from <publisher> to
        # <title> is two."
        assert index.type_distance(publisher, title) == 2

    def test_parent_child_types(self, fig1a):
        index = DocumentIndex(fig1a)
        book = data_type(index, "data.book")
        author = data_type(index, "data.book.author")
        assert index.type_distance(book, author) == 1

    def test_self_distance_zero(self, fig1a):
        index = DocumentIndex(fig1a)
        book = data_type(index, "data.book")
        assert index.type_distance(book, book) == 0

    def test_cross_subtree_distance(self, fig1a):
        index = DocumentIndex(fig1a)
        name = data_type(index, "data.book.author.name")
        publisher = data_type(index, "data.book.publisher")
        # name 1.1.2.1 to publisher 1.1.3: LCA book at level 1 -> 2 + 1.
        assert index.type_distance(name, publisher) == 3

    def test_symmetric(self, fig1b):
        index = DocumentIndex(fig1b)
        types = index.types()
        for first in types:
            for second in types:
                assert index.type_distance(first, second) == index.type_distance(
                    second, first
                )


class TestClosestPairsFig1:
    def test_paper_worked_example(self, fig1a):
        """Section VII: publisher 1.1.3 is closest to title 1.1.1 only."""
        index = DocumentIndex(fig1a)
        publisher = data_type(index, "data.book.publisher")
        title = data_type(index, "data.book.title")
        pairs = [
            (str(p.dewey), str(t.dewey)) for p, t in index.closest_pairs(publisher, title)
        ]
        assert pairs == [("1.1.3", "1.1.1"), ("1.2.3", "1.2.1")]

    def test_author_book_join(self, fig1a):
        """Section VII render step 2: authors CLOSE books."""
        index = DocumentIndex(fig1a)
        author = data_type(index, "data.book.author")
        book = data_type(index, "data.book")
        pairs = [(str(a.dewey), str(b.dewey)) for a, b in index.closest_pairs(author, book)]
        assert pairs == [("1.1.2", "1.1"), ("1.2.2", "1.2")]

    def test_same_type_yields_nothing(self, fig1a):
        index = DocumentIndex(fig1a)
        book = data_type(index, "data.book")
        assert list(index.closest_pairs(book, book)) == []

    def test_closest_partners_of_node(self, fig1a):
        index = DocumentIndex(fig1a)
        title = data_type(index, "data.book.title")
        first_publisher = index.nodes_of(data_type(index, "data.book.publisher"))[0]
        partners = index.closest_partners(first_publisher, title)
        assert [str(n.dewey) for n in partners] == ["1.1.1"]

    def test_grouped_instance_fanout(self, fig1c):
        # In (c), one author groups two books: author CLOSE book fans out.
        index = DocumentIndex(fig1c)
        author = data_type(index, "data.author")
        book = data_type(index, "data.author.book")
        pairs = list(index.closest_pairs(author, book))
        assert len(pairs) == 2
        assert {str(b.dewey) for _, b in pairs} == {"1.1.2", "1.1.3"}


class TestSequences:
    def test_document_order(self, fig1b):
        index = DocumentIndex(fig1b)
        for data_type_ in index.types():
            nodes = index.nodes_of(data_type_)
            assert [n.dewey for n in nodes] == sorted(n.dewey for n in nodes)

    def test_node_count(self, fig1a):
        index = DocumentIndex(fig1a)
        assert index.node_count() == fig1a.node_count()

    def test_type_of(self, fig1a):
        index = DocumentIndex(fig1a)
        for node in fig1a.iter_nodes():
            assert index.type_of(node).path == node.type_path()


class TestAgainstBruteForce:
    """The index must agree with the O(n²) ground truth."""

    def check(self, forest):
        index = DocumentIndex(forest)
        graph = closest_graph(forest)
        # 1. Type distances equal brute-force minima.
        nodes = list(forest.iter_nodes())
        for first_type in index.types():
            for second_type in index.types():
                if first_type is second_type:
                    continue
                expected = None
                for v in index.nodes_of(first_type):
                    for w in index.nodes_of(second_type):
                        d = v.dewey.distance(w.dewey)
                        if d is not None and (expected is None or d < expected):
                            expected = d
                assert index.type_distance(first_type, second_type) == expected
        # 2. Closest pairs equal the graph's edges for each type pair.
        for first_type in index.types():
            for second_type in index.types():
                if first_type is second_type:
                    continue
                pairs = {
                    frozenset((v.dewey, w.dewey))
                    for v, w in index.closest_pairs(first_type, second_type)
                }
                expected_edges = {
                    edge
                    for edge in graph.edges
                    if {
                        forest.node_by_dewey(min(edge)).type_path(),
                        forest.node_by_dewey(max(edge)).type_path(),
                    }
                    == {first_type.path, second_type.path}
                }
                assert pairs == expected_edges

    def test_fig1_instances(self, fig1_all):
        for forest in fig1_all.values():
            self.check(forest)

    @settings(max_examples=40, deadline=None)
    @given(documents(max_depth=3, max_children=3))
    def test_random_documents(self, forest):
        self.check(forest)


class TestClosestPairMapMemo:
    """The memoized per-type-pair join map shared by both renderers."""

    def check_map_matches_pairs(self, index):
        for first in index.types():
            for second in index.types():
                if first == second:
                    continue
                expected: dict[int, list] = {}
                for anchor, partner in index.closest_pairs(first, second):
                    expected.setdefault(id(anchor), []).append(partner)
                mapping = index.closest_pair_map(first, second)
                assert {
                    key: [n.dewey for n in value] for key, value in mapping.items()
                } == {
                    key: [n.dewey for n in value] for key, value in expected.items()
                }

    def test_fig1_instances(self, fig1_all):
        for forest in fig1_all.values():
            self.check_map_matches_pairs(DocumentIndex(forest))

    @settings(max_examples=25, deadline=None)
    @given(documents(max_depth=3, max_children=3))
    def test_random_documents(self, forest):
        self.check_map_matches_pairs(DocumentIndex(forest))

    def test_second_lookup_is_cached(self, fig1a):
        index = DocumentIndex(fig1a)
        author = data_type(index, "data.book.author")
        title = data_type(index, "data.book.title")
        first = index.closest_pair_map(author, title)
        assert index.join_cache_misses == 1
        again = index.closest_pair_map(author, title)
        assert again is first
        assert index.join_cache_hits == 1

    def test_drop_join_cache_forgets(self, fig1a):
        index = DocumentIndex(fig1a)
        author = data_type(index, "data.book.author")
        title = data_type(index, "data.book.title")
        first = index.closest_pair_map(author, title)
        index.drop_join_cache()
        again = index.closest_pair_map(author, title)
        assert again is not first
        assert index.join_cache_misses == 2


class TestRestrictPass:
    """The hash-grouped RESTRICT semi-join vs the per-node reference."""

    @staticmethod
    def reference_pass(index, node, filter_shape, vertex):
        """The original O(n·m) per-node filter, kept as ground truth."""
        for child in filter_shape.children(vertex):
            if child.source is None:
                continue
            partners = [
                partner
                for partner in index.closest_partners(node, child.source)
                if TestRestrictPass.reference_pass(index, partner, filter_shape, child)
            ]
            if not partners:
                return False
        return True

    def check_guard(self, forest, guard):
        import repro
        from repro.shape.shape import Shape as _Shape

        interpreter = repro.Interpreter(forest)
        result = interpreter.compile(guard)
        index = interpreter.index
        checked = 0
        for vertex in result.target_shape.types():
            if vertex.restrict_filter is None or vertex.source is None:
                continue
            filter_shape: _Shape = vertex.restrict_filter
            nodes = index.nodes_of(vertex.source)
            fast = index.restrict_pass(nodes, vertex.source, filter_shape)
            root = filter_shape.roots()[0]
            slow = [
                node
                for node in nodes
                if self.reference_pass(index, node, filter_shape, root)
            ]
            assert [n.dewey for n in fast] == [n.dewey for n in slow]
            checked += 1
        assert checked > 0

    def test_restrict_single_level(self, fig1a):
        self.check_guard(fig1a, "CAST MORPH (RESTRICT name [ author ])")

    def test_restrict_nested_filter(self, fig1a):
        self.check_guard(
            fig1a, "CAST MORPH (RESTRICT book [ author [ name ] ])"
        )

    def test_restrict_multiple_requirements(self, fig1a):
        self.check_guard(
            fig1a, "CAST MORPH (RESTRICT book [ author publisher ])"
        )

    def test_restrict_workload(self):
        from repro.workloads import generate_dblp

        self.check_guard(
            generate_dblp(60), "CAST MORPH (RESTRICT article [ ee crossref ])"
        )

    def test_self_type_group_excluded(self, fig1a):
        # A node is never its own closest partner: RESTRICTing a type on
        # itself keeps only nodes with a *sibling* instance at the LCA.
        index = DocumentIndex(fig1a)
        author = data_type(index, "data.book.author")
        shape = Shape()
        root_vertex = ShapeType.for_source(author)
        child_vertex = ShapeType.for_source(author)
        shape.add_type(root_vertex)
        shape.add_type(child_vertex)
        shape.add_edge(root_vertex, child_vertex, Card(1, 1))
        nodes = index.nodes_of(author)
        fast = index.restrict_pass(nodes, author, shape)
        slow = [
            node
            for node in nodes
            if self.reference_pass(index, node, shape, root_vertex)
        ]
        assert [n.dewey for n in fast] == [n.dewey for n in slow]
