"""Tests for the XQuery-lite extensions: order by and the aggregate /
string function library."""

import pytest

from repro.errors import QueryError
from repro.xquery import QueryContext, evaluate
from repro.xmltree import parse_document

SHOP = """
<shop>
  <item><name>pen</name><price>3</price></item>
  <item><name>ink</name><price>12</price></item>
  <item><name>nib</name><price>7</price></item>
</shop>
"""


@pytest.fixture
def ctx():
    return QueryContext.for_forest(parse_document(SHOP))


class TestOrderBy:
    def test_ascending_numeric(self, ctx):
        result = evaluate(
            "for $i in /shop/item order by number($i/price) return $i/name/text()",
            ctx,
        )
        assert result == ["pen", "nib", "ink"]

    def test_descending(self, ctx):
        result = evaluate(
            "for $i in /shop/item order by number($i/price) descending "
            "return $i/name/text()",
            ctx,
        )
        assert result == ["ink", "nib", "pen"]

    def test_string_ordering(self, ctx):
        result = evaluate(
            "for $i in /shop/item order by $i/name return $i/name/text()",
            ctx,
        )
        assert result == ["ink", "nib", "pen"]

    def test_explicit_ascending_keyword(self, ctx):
        result = evaluate(
            "for $i in /shop/item order by $i/name ascending return $i/name/text()",
            ctx,
        )
        assert result == ["ink", "nib", "pen"]

    def test_order_with_where(self, ctx):
        result = evaluate(
            "for $i in /shop/item where number($i/price) > 3 "
            "order by $i/name return $i/name/text()",
            ctx,
        )
        assert result == ["ink", "nib"]

    def test_multiple_keys(self):
        forest = parse_document(
            "<r><p><g>b</g><n>2</n></p><p><g>a</g><n>9</n></p>"
            "<p><g>b</g><n>1</n></p></r>"
        )
        context = QueryContext.for_forest(forest)
        result = evaluate(
            "for $p in /r/p order by $p/g, number($p/n) return "
            "concat($p/g/text(), $p/n/text())",
            context,
        )
        assert result == ["a9", "b1", "b2"]


class TestAggregates:
    def test_sum(self, ctx):
        assert evaluate("sum(/shop/item/price)", ctx) == [22.0]

    def test_avg(self, ctx):
        result = evaluate("avg(/shop/item/price)", ctx)
        assert result == pytest.approx([22 / 3])

    def test_min_max(self, ctx):
        assert evaluate("min(/shop/item/price)", ctx) == [3.0]
        assert evaluate("max(/shop/item/price)", ctx) == [12.0]

    def test_empty_aggregates(self, ctx):
        assert evaluate("sum(/shop/nope)", ctx) == [0.0]
        assert evaluate("avg(/shop/nope)", ctx) == []
        assert evaluate("min(/shop/nope)", ctx) == []

    def test_non_numeric_rejected(self, ctx):
        with pytest.raises(QueryError):
            evaluate("sum(/shop/item/name)", ctx)


class TestQuantifiers:
    def test_some(self, ctx):
        assert evaluate(
            "some $i in /shop/item satisfies number($i/price) > 10", ctx
        ) == [True]
        assert evaluate(
            "some $i in /shop/item satisfies number($i/price) > 100", ctx
        ) == [False]

    def test_every(self, ctx):
        assert evaluate(
            "every $i in /shop/item satisfies number($i/price) > 1", ctx
        ) == [True]
        assert evaluate(
            "every $i in /shop/item satisfies number($i/price) > 5", ctx
        ) == [False]

    def test_empty_source(self, ctx):
        assert evaluate("some $x in /shop/nope satisfies 1 = 1", ctx) == [False]
        assert evaluate("every $x in /shop/nope satisfies 1 = 2", ctx) == [True]

    def test_in_where_clause(self, ctx):
        result = evaluate(
            "for $s in /shop where some $i in $s/item satisfies $i/name = 'ink' "
            "return count($s/item)",
            ctx,
        )
        assert result == [3.0]

    def test_bare_names_not_quantifiers(self, ctx):
        # `some` followed by a non-variable is an ordinary path step.
        forest = parse_document("<r><some>x</some></r>")
        context = QueryContext.for_forest(forest)
        assert evaluate("/r/some/text()", context) == ["x"]


class TestStringFunctions:
    def test_string_length(self, ctx):
        assert evaluate("string-length('hello')", ctx) == [5.0]

    def test_substring(self, ctx):
        assert evaluate("substring('bibliography', 1, 4)", ctx) == ["bibl"]
        assert evaluate("substring('bibliography', 8)", ctx) == ["raphy"]

    def test_starts_and_ends_with(self, ctx):
        assert evaluate("starts-with('query guard', 'query')", ctx) == [True]
        assert evaluate("ends-with('query guard', 'guard')", ctx) == [True]
        assert evaluate("starts-with('query', 'guard')", ctx) == [False]

    def test_normalize_space(self, ctx):
        assert evaluate("normalize-space('  a   b  ')", ctx) == ["a b"]

    def test_round(self, ctx):
        assert evaluate("round(avg(/shop/item/price))", ctx) == [7.0]

    def test_in_guard_pipeline(self, ctx):
        result = evaluate(
            "for $i in /shop/item where starts-with($i/name, 'n') "
            "return $i/name/text()",
            ctx,
        )
        assert result == ["nib"]
