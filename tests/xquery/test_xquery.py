"""Tests for the XQuery-lite engine."""

import pytest

import repro
from repro.errors import QueryError, QuerySyntaxError
from repro.xquery import QueryContext, evaluate, parse_query
from repro.xquery.evaluator import boolean_value, string_value
from repro.xmltree import parse_document


@pytest.fixture
def ctx(fig1a):
    return QueryContext.for_forest(fig1a)


class TestPaths:
    def test_rooted_path(self, ctx):
        assert [n.name for n in evaluate("/data/book", ctx)] == ["book", "book"]

    def test_descendant_axis(self, ctx):
        names = evaluate("//name", ctx)
        assert len(names) == 4  # 2 author names + 2 publisher names

    def test_wildcard(self, ctx):
        kids = evaluate("/data/*", ctx)
        assert [n.name for n in kids] == ["book", "book"]

    def test_text_step(self, ctx):
        assert evaluate("/data/book/title/text()", ctx) == ["X", "Y"]

    def test_attribute_step(self):
        forest = parse_document('<r><a id="1"/><a id="2"/></r>')
        context = QueryContext.for_forest(forest)
        assert [n.text for n in evaluate("/r/a/@id", context)] == ["1", "2"]

    def test_predicate_comparison(self, ctx):
        books = evaluate("/data/book[title = 'X']", ctx)
        assert len(books) == 1
        assert books[0].find("title").text == "X"

    def test_positional_predicate(self, ctx):
        second = evaluate("/data/book[2]/title/text()", ctx)
        assert second == ["Y"]

    def test_chained_predicates(self, ctx):
        result = evaluate("/data/book[title][publisher/name = 'V']/title/text()", ctx)
        assert result == ["Y"]

    def test_doc_function(self, fig1a):
        context = QueryContext.for_forest(fig1a, "books")
        assert len(evaluate("doc('books')/data/book", context)) == 2

    def test_unknown_doc_raises(self, fig1a):
        context = QueryContext(documents={"a": fig1a, "b": fig1a})
        with pytest.raises(QueryError):
            evaluate("doc('missing')/x", context)


class TestFlwor:
    def test_for_return(self, ctx):
        result = evaluate(
            "for $b in /data/book return $b/title/text()", ctx
        )
        assert result == ["X", "Y"]

    def test_let_binding(self, ctx):
        result = evaluate(
            "let $books := /data/book return count($books)", ctx
        )
        assert result == [2.0]

    def test_where_clause(self, ctx):
        result = evaluate(
            "for $b in /data/book where $b/publisher/name = 'W' "
            "return $b/title/text()",
            ctx,
        )
        assert result == ["X"]

    def test_nested_for(self, ctx):
        result = evaluate(
            "for $b in /data/book, $t in $b/title return $t/text()", ctx
        )
        assert result == ["X", "Y"]

    def test_undefined_variable(self, ctx):
        with pytest.raises(QueryError):
            evaluate("$nope", ctx)


class TestConstructors:
    def test_empty_element(self, ctx):
        (node,) = evaluate("<out/>", ctx)
        assert node.name == "out" and not node.children

    def test_embedded_expression(self, ctx):
        (node,) = evaluate("<out>{/data/book/title}</out>", ctx)
        assert [c.name for c in node.children] == ["title", "title"]

    def test_copies_not_aliases(self, ctx, fig1a):
        (node,) = evaluate("<out>{/data/book/title}</out>", ctx)
        node.children[0].text = "changed"
        assert fig1a.find_named("title")[0].text == "X"

    def test_literal_text(self, ctx):
        (node,) = evaluate("<out>hello</out>", ctx)
        assert node.text == "hello"

    def test_attribute_template(self, ctx):
        (node,) = evaluate('<out n="{count(/data/book)}"/>', ctx)
        assert node.attribute("n").text == "2"

    def test_nested_constructors(self, ctx):
        (node,) = evaluate("<a><b>{/data/book[1]/title/text()}</b></a>", ctx)
        assert node.find("b").text == "X"

    def test_paper_dump_query(self, ctx):
        # The paper's eXist query shape: wrap the document root.
        result = evaluate(
            'for $b in doc("xmark.xml")/data return <data>{$b}</data>', ctx
        )
        assert len(result) == 1
        inner = result[0].children[0]
        assert inner.name == "data"
        assert len(inner.element_children()) == 2


class TestOperatorsAndFunctions:
    def test_arithmetic(self, ctx):
        assert evaluate("1 + 2 * 3", ctx) == [7.0]
        assert evaluate("(1 + 2) * 3", ctx) == [9.0]
        assert evaluate("10 - 4", ctx) == [6.0]

    def test_comparisons_numeric_and_string(self, ctx):
        assert evaluate("2 > 1", ctx) == [True]
        assert evaluate("'abc' < 'abd'", ctx) == [True]
        assert evaluate("count(//book) = 2", ctx) == [True]

    def test_general_comparison_existential(self, ctx):
        # Some title equals 'X' even though there are two titles.
        assert evaluate("//title = 'X'", ctx) == [True]
        assert evaluate("//title = 'Z'", ctx) == [False]

    def test_and_or(self, ctx):
        assert evaluate("1 = 1 and 2 = 2", ctx) == [True]
        assert evaluate("1 = 2 or 2 = 2", ctx) == [True]

    def test_if_then_else(self, ctx):
        assert evaluate("if (//title = 'X') then 'yes' else 'no'", ctx) == ["yes"]

    def test_distinct_values(self, ctx):
        assert evaluate("distinct-values(//author/name)", ctx) == ["A"]

    def test_string_functions(self, ctx):
        assert evaluate("concat('a', 'b', 'c')", ctx) == ["abc"]
        assert evaluate("contains('hello', 'ell')", ctx) == [True]
        assert evaluate("string(//title[1])", ctx) == ["X"]
        assert evaluate("name(/data)", ctx) == ["data"]

    def test_empty_and_exists(self, ctx):
        assert evaluate("empty(//nope)", ctx) == [True]
        assert evaluate("exists(//title)", ctx) == [True]

    def test_not(self, ctx):
        assert evaluate("not(//title = 'Z')", ctx) == [True]

    def test_sequences(self, ctx):
        assert evaluate("(1, 2, 3)", ctx) == [1.0, 2.0, 3.0]
        assert evaluate("()", ctx) == []

    def test_unknown_function(self, ctx):
        with pytest.raises(QueryError):
            evaluate("frobnicate(1)", ctx)


class TestValueModel:
    def test_string_value_concatenates_descendants(self, fig1a):
        book = fig1a.roots[0].children[0]
        assert string_value(book) == "XAW"

    def test_boolean_value_rules(self, fig1a):
        assert boolean_value([fig1a.roots[0]])
        assert not boolean_value([])
        assert boolean_value(["x"]) and not boolean_value([""])
        assert boolean_value([1.0]) and not boolean_value([0.0])

    def test_number_formatting(self, ctx):
        assert evaluate("string(count(//book))", ctx) == ["2"]


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "for $x return 1",  # missing 'in'
            "let $x = 1 return $x",  # '=' instead of ':='
            "/data/book[",  # unterminated predicate
            "<a>{1}</b>",  # mismatched constructor tags
            "1 +",  # dangling operator
            "'unterminated",
        ],
    )
    def test_rejects(self, query):
        with pytest.raises(QuerySyntaxError):
            parse_query(query)
