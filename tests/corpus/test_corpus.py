"""Run the golden-case corpus: exact semantics, pinned forever."""

import pytest

import repro

from tests.corpus.cases import CASES


@pytest.mark.parametrize("case", CASES, ids=[case.name for case in CASES])
class TestCorpus:
    def test_output(self, case):
        result = repro.transform(repro.parse_document(case.document), case.guard)
        expected = repro.parse_forest(case.expected)
        assert result.forest.canonical() == expected.canonical(), (
            f"{case.name}\n--- got ---\n{result.xml(indent=2)}"
            f"\n--- expected ---\n{repro.serialize(expected, indent=2)}"
        )

    def test_loss_verdict(self, case):
        result = repro.transform(repro.parse_document(case.document), case.guard)
        assert str(result.loss.guard_type) == case.loss, result.loss.pretty()

    def test_streaming_agrees(self, case):
        """Every corpus case must stream to the same output."""
        from repro.engine.stream import render_to_string
        from repro.engine.view import ViewGenerationError

        interpreter = repro.Interpreter(repro.parse_document(case.document))
        compiled = interpreter.compile(case.guard)
        streamed = render_to_string(compiled.target_shape, interpreter.index)
        expected = repro.parse_forest(case.expected)
        assert repro.parse_forest(streamed).canonical() == expected.canonical()


def test_corpus_names_unique():
    names = [case.name for case in CASES]
    assert len(set(names)) == len(names)


def test_corpus_covers_all_operators():
    """The corpus exercises every language construct at least once."""
    text = " ".join(case.guard.upper() for case in CASES)
    for keyword in [
        "MORPH", "MUTATE", "TRANSLATE", "DROP", "CLONE", "NEW",
        "RESTRICT", "TYPE-FILL", "CAST", "|", "[*", "[**", "!",
    ]:
        assert keyword in text, f"corpus misses {keyword}"
