"""The golden-case corpus: exact input → guard → output triples.

Each case pins the precise semantics of one language behaviour as a
small, reviewable triple.  The corpus doubles as documentation: read it
next to docs/LANGUAGE.md.  ``expected`` is compared modulo sibling
order (shapes are unordered); ``loss`` pins the verdict string.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Case:
    name: str
    document: str
    guard: str
    expected: str  # expected output forest, as XML
    loss: str = "strongly-typed"


BOOKS = (
    "<data>"
    "<book><title>X</title><author><name>A</name></author>"
    "<publisher><name>W</name></publisher></book>"
    "<book><title>Y</title><author><name>A</name></author>"
    "<publisher><name>V</name></publisher></book>"
    "</data>"
)

GROUPED = (
    "<data><author><name>A</name>"
    "<book><title>X</title><publisher><name>W</name></publisher></book>"
    "<book><title>Y</title><publisher><name>V</name></publisher></book>"
    "</author></data>"
)

MIXED = (
    '<lib><item id="1"><kind>cd</kind><price>9</price></item>'
    '<item id="2"><kind>dvd</kind><price>15</price></item></lib>'
)

CASES = [
    Case(
        "morph-basic-rearrangement",
        BOOKS,
        "MORPH author [ name book [ title ] ]",
        "<author><name>A</name><book><title>X</title></book></author>"
        "<author><name>A</name><book><title>Y</title></book></author>",
    ),
    Case(
        "morph-single-type",
        BOOKS,
        "MORPH title",
        "<title>X</title><title>Y</title>",
    ),
    Case(
        "morph-preserves-grouping",
        GROUPED,
        "MORPH author [ name book [ title ] ]",
        "<author><name>A</name><book><title>X</title></book>"
        "<book><title>Y</title></book></author>",
    ),
    Case(
        "morph-ambiguous-label-resolved-by-closeness",
        BOOKS,
        "MORPH publisher [ name ]",
        "<publisher><name>W</name></publisher><publisher><name>V</name></publisher>",
    ),
    Case(
        "morph-children-star",
        BOOKS,
        "MORPH publisher [*]",
        "<publisher><name>W</name></publisher><publisher><name>V</name></publisher>",
    ),
    Case(
        "morph-descendants-star",
        BOOKS,
        "MORPH book [**]",
        "<book><title>X</title><author><name>A</name></author>"
        "<publisher><name>W</name></publisher></book>"
        "<book><title>Y</title><author><name>A</name></author>"
        "<publisher><name>V</name></publisher></book>",
    ),
    Case(
        # CHILDREN (*) includes the source children as leaf types —
        # author and publisher come without their own subtrees.
        "morph-star-merges-explicit-children",
        BOOKS,
        "MORPH book [* title]",
        "<book><title>X</title><author/><publisher/></book>"
        "<book><title>Y</title><author/><publisher/></book>",
    ),
    Case(
        "morph-cousin-join",
        BOOKS,
        "MORPH title [ publisher.name ]",
        "<title>X<name>W</name></title><title>Y<name>V</name></title>",
    ),
    Case(
        "mutate-identity",
        BOOKS,
        "MUTATE data",
        BOOKS,
    ),
    Case(
        "mutate-move-down",
        BOOKS,
        "MUTATE author [ publisher ]",
        "<data><book><title>X</title><author><name>A</name>"
        "<publisher><name>W</name></publisher></author></book>"
        "<book><title>Y</title><author><name>A</name>"
        "<publisher><name>V</name></publisher></author></book></data>",
    ),
    Case(
        "mutate-swap-ancestor",
        BOOKS,
        "MUTATE author.name [ author ]",
        "<data><book><title>X</title><name>A<author/></name>"
        "<publisher><name>W</name></publisher></book>"
        "<book><title>Y</title><name>A<author/></name>"
        "<publisher><name>V</name></publisher></book></data>",
    ),
    Case(
        "mutate-drop-hoists-children",
        BOOKS,
        "MUTATE (DROP author)",
        "<data><book><title>X</title><name>A</name>"
        "<publisher><name>W</name></publisher></book>"
        "<book><title>Y</title><name>A</name>"
        "<publisher><name>V</name></publisher></book></data>",
    ),
    Case(
        "mutate-new-wraps-each",
        BOOKS,
        "MUTATE (NEW scribe) [ author ]",
        "<data><book><title>X</title><scribe><author><name>A</name></author></scribe>"
        "<publisher><name>W</name></publisher></book>"
        "<book><title>Y</title><scribe><author><name>A</name></author></scribe>"
        "<publisher><name>V</name></publisher></book></data>",
    ),
    Case(
        "mutate-clone-duplicates",
        BOOKS,
        "CAST (MUTATE publisher [ CLONE title ])",
        "<data><book><title>X</title><author><name>A</name></author>"
        "<publisher><name>W</name><title>X</title></publisher></book>"
        "<book><title>Y</title><author><name>A</name></author>"
        "<publisher><name>V</name><title>Y</title></publisher></book></data>",
    ),
    Case(
        # RESTRICT keeps only the root type; the filter stays hidden.
        # The second item has no <kind>, so it is filtered out.
        "restrict-filters-instances",
        '<lib><item id="1"><kind>cd</kind></item><item id="2"/></lib>',
        "MORPH (RESTRICT item [ kind ])",
        "<item/>",
    ),
    Case(
        "translate-renames-output",
        BOOKS,
        "MORPH author [ name ] | TRANSLATE author -> writer",
        "<writer><name>A</name></writer><writer><name>A</name></writer>",
    ),
    Case(
        "compose-morph-then-drop",
        BOOKS,
        "MORPH author [ name ] | MUTATE (DROP name)",
        "<author/><author/>",
    ),
    Case(
        # Stage 1 keeps book as a leaf (no title mentioned); stage 3
        # moves name below the renamed work.
        "compose-three-stages",
        BOOKS,
        "MORPH author [ name book ] | TRANSLATE book -> work | MUTATE work [ name ]",
        "<author><work><name>A</name></work></author>"
        "<author><work><name>A</name></work></author>",
    ),
    Case(
        "attributes-travel",
        MIXED,
        "MORPH item [ id kind ]",
        '<item id="1"><kind>cd</kind></item><item id="2"><kind>dvd</kind></item>',
    ),
    Case(
        "type-fill-placeholder",
        MIXED,
        "CAST (TYPE-FILL MORPH item [ kind isbn ])",
        "<item><kind>cd</kind><isbn/></item><item><kind>dvd</kind><isbn/></item>",
        loss="strongly-typed",
    ),
    Case(
        # Both authors are closest to the one title: the render copies
        # it under each.  Duplication alone adds no closest-edge types,
        # so the verdict is still strongly-typed (cf. Theorem 2).
        "duplication-without-widening",
        "<data><book><title>T</title>"
        "<author><name>A</name></author><author><name>B</name></author>"
        "</book></data>",
        "MORPH author [ name title ]",
        "<author><name>A</name><title>T</title></author>"
        "<author><name>B</name><title>T</title></author>",
    ),
    Case(
        "narrowing-drops-partnerless",
        "<data><book><title>X</title><author><name>A</name></author></book>"
        "<book><title>Y</title><author/></book></data>",
        "CAST-NARROWING MUTATE author.name [ author ]",
        "<data><book><title>X</title><name>A<author/></name></book>"
        "<book><title>Y</title></book></data>",
        loss="narrowing",
    ),
    Case(
        "bang-accepts-loss",
        "<data><author><name>A</name>"
        "<book><title>X</title><publisher><name>W</name></publisher></book>"
        "<book><title>Y</title><publisher><name>V</name></publisher></book>"
        "</author></data>",
        "MORPH author [ !title publisher [ name ] ]",
        "<author><title>X</title><title>Y</title>"
        "<publisher><name>W</name></publisher>"
        "<publisher><name>V</name></publisher></author>",
        loss="widening",
    ),
    Case(
        "new-root-wrapper",
        BOOKS,
        "MORPH (NEW bibliography) [ author [ name ] ]",
        "<bibliography><author><name>A</name></author></bibliography>"
        "<bibliography><author><name>A</name></author></bibliography>",
    ),
    Case(
        "dotted-label-disambiguation",
        BOOKS,
        "MORPH author.name",
        "<name>A</name><name>A</name>",
    ),
]

MORE_CASES = [
    Case(
        # Attributes move with their owner type under MUTATE.
        "mutate-with-attributes",
        '<r><entry key="k1"><v>1</v></entry><entry key="k2"><v>2</v></entry></r>',
        "MUTATE v [ entry ]",
        '<r><v>1<entry key="k1"/></v><v>2<entry key="k2"/></v></r>',
    ),
    Case(
        # NEW then TRANSLATE: the new label is renameable downstream.
        "new-then-translate",
        "<r><a>x</a></r>",
        "MUTATE (NEW wrap) [ a ] | TRANSLATE wrap -> box",
        "<r><box><a>x</a></box></r>",
    ),
    Case(
        # RESTRICT composed: the filter applies, then the shape extends.
        "restrict-then-extend",
        "<r><p><q/><t>keep</t></p><p><t>drop</t></p></r>",
        "CAST MORPH (RESTRICT p [ q ]) [ t ]",
        "<p><t>keep</t></p>",
    ),
    Case(
        # Descendants under MUTATE target: ** inside a mutate pattern.
        "mutate-with-descendants",
        "<r><a><b><c>leaf</c></b></a><z/></r>",
        "MUTATE z [ b [**] ]",
        "<r><a/><z><b><c>leaf</c></b></z></r>",
    ),
    Case(
        # Deeply nested chains keep every level's text.
        "deep-chain-values",
        "<l1>a<l2>b<l3>c<l4>d</l4></l3></l2></l1>",
        "MORPH l4 [ l3 [ l2 [ l1 ] ] ]",
        "<l4>d<l3>c<l2>b<l1>a</l1></l2></l3></l4>",
    ),
    Case(
        # Numeric and special-character text survive the round trip.
        "special-characters",
        "<r><x>a &amp; b &lt; c</x><x>3.14</x></r>",
        "MORPH x",
        "<x>a &amp; b &lt; c</x><x>3.14</x>",
    ),
    Case(
        # An empty source selection is legal: no instances, no output.
        "empty-instance-set",
        "<r><a/></r>",
        "MORPH a [*]",
        "<a/>",
    ),
    Case(
        # Multiple TRANSLATE entries apply independently.
        "translate-multiple",
        "<r><a>1</a><b>2</b></r>",
        "MUTATE r | TRANSLATE a -> x, b -> y",
        "<r><x>1</x><y>2</y></r>",
    ),
]

CASES = CASES + MORE_CASES
