"""Tests for the workload generators."""

import pytest

from repro.closeness import DocumentIndex
from repro.workloads import generate_dblp, generate_nasa, generate_xmark
from repro.workloads.dblp import publications_for_megabytes
from repro.xmltree import parse_forest, serialize


class TestXMark:
    def test_deterministic(self):
        assert generate_xmark(0.001).canonical() == generate_xmark(0.001).canonical()

    def test_seed_changes_content(self):
        assert generate_xmark(0.001, seed=1).canonical() != generate_xmark(
            0.001, seed=2
        ).canonical()

    def test_size_scales_with_factor(self):
        small = generate_xmark(0.001).node_count()
        large = generate_xmark(0.004).node_count()
        assert 2.5 <= large / small <= 6

    def test_schema_sections_present(self):
        site = generate_xmark(0.001).roots[0]
        assert site.name == "site"
        assert [c.name for c in site.element_children()] == [
            "regions",
            "categories",
            "catgraph",
            "people",
            "open_auctions",
            "closed_auctions",
        ]

    def test_rich_type_population(self):
        index = DocumentIndex(generate_xmark(0.003))
        # The real XMark document has 471 distinct types; our generator
        # must be in the same regime (hundreds).
        assert len(index.types()) > 200

    def test_serializes_and_reparses(self):
        forest = generate_xmark(0.001)
        again = parse_forest(serialize(forest))
        assert again.canonical() == forest.canonical()

    def test_mutate_site_is_strongly_typed(self):
        import repro

        report = repro.check(generate_xmark(0.001), "MUTATE site")
        assert str(report.guard_type) == "strongly-typed"


class TestDblp:
    def test_deterministic(self):
        assert generate_dblp(50).canonical() == generate_dblp(50).canonical()

    def test_publication_count(self):
        forest = generate_dblp(120)
        assert len(forest.roots[0].element_children()) == 120

    def test_fields_match_paper_guards(self):
        """The Figure 14 guards must find their labels in the data."""
        import repro

        forest = generate_dblp(100)
        for guard in [
            "MORPH author",
            "CAST-WIDENING MORPH author [title [year]]",
            "CAST-WIDENING MORPH dblp [author [title [year [pages] url]]]",
        ]:
            result = repro.transform(forest, guard)
            assert result.forest.node_count() > 0

    def test_slice_sizing_helper(self):
        assert publications_for_megabytes(134) > publications_for_megabytes(67)

    def test_flat_root_shape(self):
        index = DocumentIndex(generate_dblp(80))
        root_types = {t.dotted for t in index.types() if t.level == 1}
        assert root_types <= {"dblp.article", "dblp.inproceedings", "dblp.phdthesis"}


class TestNasa:
    def test_deterministic(self):
        assert generate_nasa(20).canonical() == generate_nasa(20).canonical()

    def test_long_text_content(self):
        forest = generate_nasa(30)
        paragraphs = forest.find_named("para")
        assert paragraphs
        average = sum(len(p.text) for p in paragraphs) / len(paragraphs)
        # Figure 15: the NASA data's element content is large.
        assert average > 300

    def test_text_density_exceeds_dblp(self):
        nasa = generate_nasa(30)
        dblp = generate_dblp(30 * 8)
        nasa_density = sum(len(n.text) for n in nasa.iter_nodes()) / nasa.node_count()
        dblp_density = sum(len(n.text) for n in dblp.iter_nodes()) / dblp.node_count()
        assert nasa_density > 2 * dblp_density

    def test_schema_shape(self):
        dataset = generate_nasa(5).roots[0].element_children()[0]
        names = {c.name for c in dataset.element_children()}
        assert {"title", "abstract", "keywords", "reference", "tableHead"} <= names
