"""Tests for the xmorph command-line tool."""

import pytest

from repro.cli import main

from tests.conftest import FIG1A


@pytest.fixture
def doc(tmp_path):
    path = tmp_path / "books.xml"
    path.write_text(FIG1A)
    return str(path)


class TestCommands:
    def test_shape(self, doc, capsys):
        assert main(["shape", doc]) == 0
        out = capsys.readouterr().out
        assert "data" in out and "book" in out

    def test_shape_stats(self, doc, capsys):
        assert main(["shape", doc, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "types:" in out and "nodes:" in out

    def test_check(self, doc, capsys):
        assert main(["check", doc, "MORPH author [ name ]"]) == 0
        assert "strongly-typed" in capsys.readouterr().out

    def test_check_misspelled_label(self, doc, capsys):
        assert main(["check", doc, "MORPH athor [ name ]"]) == 1
        out = capsys.readouterr().out
        assert "error[XM201]" in out
        assert "did you mean 'author'" in out
        assert "^^^^^" in out  # caret excerpt under 'athor'

    def test_check_json_format(self, doc, capsys):
        import json

        assert main(["check", doc, "MORPH athor [ name ]", "--format=json"]) == 1
        lines = capsys.readouterr().out.strip().splitlines()
        payloads = [json.loads(line) for line in lines]
        assert all(
            {"code", "severity", "message", "span"} <= set(p) for p in payloads
        )
        assert any(p["code"] == "XM201" for p in payloads)

    def test_check_strict_promotes_warnings(self, doc, capsys):
        guard = "MORPH author [ !name ]"  # redundant bang: a warning
        assert main(["check", doc, guard]) == 0
        capsys.readouterr()
        assert main(["check", doc, guard, "--strict"]) == 2
        assert "warning[XM402]" in capsys.readouterr().out

    def test_check_with_query(self, doc, capsys):
        code = main(
            [
                "check",
                doc,
                "MORPH author [ name ]",
                "--query",
                "for $a in /author return $a/title/text()",
                "--strict",
            ]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "warning[XM404]" in out
        assert "<query>" in out

    def test_transform(self, doc, capsys):
        assert main(["transform", doc, "MORPH author [ name ]"]) == 0
        assert "<author>" in capsys.readouterr().out

    def test_transform_reports(self, doc, capsys):
        assert main(["transform", doc, "MORPH author [ name ]", "--reports"]) == 0
        captured = capsys.readouterr()
        assert "information loss" in captured.err
        assert "label resolution" in captured.err
        assert "target shape" in captured.err
        assert "output schema (DTD)" in captured.err
        assert "statistics" in captured.err

    def test_query(self, doc, capsys):
        code = main(
            [
                "query",
                doc,
                "--guard",
                "MORPH author [ name book [ title ] ]",
                "--query",
                "for $a in /author return $a/book/title/text()",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "X" in out and "Y" in out

    def test_db_stream_transform(self, doc, tmp_path, capsys):
        db = str(tmp_path / "s.db")
        out = str(tmp_path / "out.xml")
        assert main(["shred", "--db", db, "books", doc]) == 0
        assert main(["db-transform", "--db", db, "books", "MORPH author [ name ]", "-o", out]) == 0
        assert "streamed" in capsys.readouterr().out
        import repro

        streamed = repro.parse_forest(open(out).read())
        assert len(streamed.roots) == 2

    def test_shred_ls_and_db_transform(self, doc, tmp_path, capsys):
        db = str(tmp_path / "bib.db")
        assert main(["shred", "--db", db, "books", doc]) == 0
        assert main(["ls", "--db", db]) == 0
        assert "books" in capsys.readouterr().out
        assert main(["db-transform", "--db", db, "books", "MORPH title", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "<title>" in captured.out
        assert "blocks" in captured.err


class TestUpdateCommand:
    @pytest.fixture
    def stored(self, tmp_path):
        source = tmp_path / "lib.xml"
        source.write_text(
            "<lib><book><title>T1</title></book>"
            "<book><title>T2</title></book></lib>"
        )
        db = str(tmp_path / "u.db")
        assert main(["shred", "--db", db, "doc", str(source)]) == 0
        return db

    def test_ops_interleave_into_one_batch(self, stored, tmp_path, capsys):
        subtree = tmp_path / "new.xml"
        subtree.write_text("<book><title>T0</title></book>")
        capsys.readouterr()
        # File-path insert at slot 1, then delete the displaced last
        # book, then an inline-XML replace — applied in this order.
        assert (
            main(
                [
                    "update", "--db", stored, "doc",
                    "--insert", f"1@1={subtree}",
                    "--delete", "1.3",
                    "--replace", "1.2=<pamphlet><title>P</title></pamphlet>",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3 op(s)" in out
        assert main(["db-transform", "--db", stored, "doc", "MORPH title"]) == 0
        titles = capsys.readouterr().out
        assert "T0" in titles and "P" in titles
        assert "T1" not in titles and "T2" not in titles

    def test_json_result(self, stored, capsys):
        import json

        capsys.readouterr()
        assert (
            main(["update", "--db", stored, "doc", "--json", "--delete", "1.2"]) == 0
        )
        result = json.loads(capsys.readouterr().out)
        assert result["ops"] == 1
        assert result["nodes_removed"] == 2  # the book and its title
        assert result["new_fingerprint"] != result["old_fingerprint"]

    def test_operand_errors_exit_2(self, stored, capsys):
        assert main(["update", "--db", stored, "doc"]) == 2
        assert "nothing to do" in capsys.readouterr().err
        assert main(["update", "--db", stored, "doc", "--insert", "oops"]) == 2
        assert "expects TARGET=XML" in capsys.readouterr().err
        assert main(["update", "--db", stored, "doc", "--insert", "1@x=<a/>"]) == 2
        assert "not an integer" in capsys.readouterr().err

    def test_bad_target_is_a_coded_error(self, stored, capsys):
        assert main(["update", "--db", stored, "doc", "--delete", "1.99"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRunAndTrace:
    def test_run_prints_xml_by_default(self, doc, capsys):
        assert main(["run", doc, "MORPH author [ name ]"]) == 0
        assert "<author>" in capsys.readouterr().out

    def test_run_profile_prints_annotated_plan(self, doc, capsys):
        assert main(["run", doc, "MORPH author [ name ]", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "author  rows=2" in out
        assert "name  rows=2" in out
        assert "lang.parse" in out
        assert "typing.type-analysis" in out
        assert "pipeline.render" in out
        assert "storage (modelled):" in out

    def test_run_profile_json_is_valid_and_complete(self, doc, tmp_path, capsys):
        import json

        trace_path = str(tmp_path / "trace.jsonl")
        code = main(
            ["run", doc, "MORPH author [ name ]", "--profile", "--profile-json", trace_path]
        )
        assert code == 0
        names, metrics = [], None
        with open(trace_path) as handle:
            for line in handle:
                record = json.loads(line)
                if record["type"] == "span":
                    names.append(record["name"])
                elif record["type"] == "metrics":
                    metrics = record
        for expected in ("lang.parse", "typing.type-analysis", "pipeline.render"):
            assert expected in names
        assert any(key.startswith("storage.") for key in metrics["counters"])

    def test_run_profile_json_stdout(self, doc, capsys):
        assert main(["run", doc, "MORPH author [ name ]", "--profile-json", "-"]) == 0
        assert '"type": "trace"' in capsys.readouterr().out

    def test_run_against_database(self, doc, tmp_path, capsys):
        db = str(tmp_path / "run.db")
        assert main(["shred", "--db", db, "books", doc]) == 0
        capsys.readouterr()
        assert main(["run", "--db", db, "books", "MORPH author [ name ]", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "storage (modelled):" in out

    def test_trace_prints_span_tree(self, doc, capsys):
        assert main(["trace", doc, "MORPH author [ name ]"]) == 0
        out = capsys.readouterr().out
        assert "storage.shred" in out
        assert "pipeline.compile" in out
        assert "  lang.parse" in out
        assert "counters:" in out

    def test_trace_json(self, doc, capsys):
        import json

        assert main(["trace", doc, "MORPH author [ name ]", "--json"]) == 0
        for line in capsys.readouterr().out.strip().splitlines():
            json.loads(line)

    def test_run_bad_guard_reports_error(self, doc, capsys):
        assert main(["run", doc, "MORPH [", "--profile"]) == 1
        err = capsys.readouterr().err
        assert "error[XM1" in err
        assert "^" in err  # caret excerpt pointing at the offending token


class TestToolingCommands:
    def test_dtd(self, doc, capsys):
        assert main(["dtd", doc]) == 0
        out = capsys.readouterr().out
        assert "<!ELEMENT data (book+)>" in out

    def test_dtd_of_guard_output(self, doc, capsys):
        assert main(["dtd", doc, "--guard", "MORPH author [ name ]"]) == 0
        assert "<!ELEMENT author (name)>" in capsys.readouterr().out

    def test_infer(self, capsys):
        code = main(["infer", "for $a in /data/author return $a/book/title"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "MORPH data [ author [ book [ title ] ] ]"

    def test_infer_nothing(self, capsys):
        assert main(["infer", "1 + 1"]) == 1

    def test_quantify(self, doc, capsys):
        assert main(["quantify", doc, "MUTATE data"]) == 0
        out = capsys.readouterr().out
        assert "loses 0.0%" in out and "manufactures 0.0%" in out

    def test_diff(self, doc, tmp_path, capsys):
        from tests.conftest import FIG1B

        other = tmp_path / "b.xml"
        other.write_text(FIG1B)
        assert main(["diff", doc, str(other)]) == 0
        assert "moved: publisher" in capsys.readouterr().out

    def test_view(self, doc, capsys):
        assert main(["view", doc, "MORPH author [ name ]"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("for $v1 in /data/book/author")

    def test_explain(self, capsys):
        assert main(["explain", "MORPH author [ name ]"]) == 0
        out = capsys.readouterr().out
        assert "ONLY these types" in out


class TestErrors:
    def test_bad_guard_reports_error(self, doc, capsys):
        assert main(["check", doc, "MORPH ["]) == 1
        out = capsys.readouterr().out
        assert "error[XM1" in out
        assert "^" in out

    def test_lossy_guard_blocked(self, tmp_path, capsys):
        path = tmp_path / "c.xml"
        from tests.conftest import FIG1C

        path.write_text(FIG1C)
        code = main(
            ["transform", str(path), "MORPH author [ title publisher [ name ] ]"]
        )
        assert code == 1
        assert "widening" in capsys.readouterr().err

    def test_missing_document_in_db(self, tmp_path, capsys):
        db = str(tmp_path / "empty.db")
        assert main(["ls", "--db", db]) == 0
        assert main(["db-transform", "--db", db, "nope", "MORPH x"]) == 1


class TestEvolveCommand:
    @pytest.fixture
    def evolution(self, tmp_path):
        old = tmp_path / "old.xml"
        new = tmp_path / "new.xml"
        old.write_text(
            "<catalog><book><title>X</title><isbn>1</isbn></book></catalog>"
        )
        new.write_text("<catalog><book><title>X</title></book></catalog>")
        guards = tmp_path / "guards"
        guards.mkdir()
        (guards / "keep.guard").write_text("MORPH book [ title isbn ]\n")
        (guards / "titles.guard").write_text("MORPH book [ title ]\n")
        return str(old), str(new), str(guards)

    def test_text_output_and_exit_code(self, evolution, capsys):
        old, new, guards = evolution
        assert main(["evolve", old, new, "--guards", guards]) == 1
        out = capsys.readouterr().out
        assert "== shape evolution ==" in out
        assert "removed: isbn" in out
        assert "keep: broken" in out
        assert "titles: compatible" in out
        assert "error[XM601]" in out

    def test_json_output(self, evolution, capsys):
        import json

        old, new, guards = evolution
        assert main(["evolve", old, new, "--guards", guards, "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "xmorph-evolve/v1"
        assert payload["counts"] == {"compatible": 1, "degraded": 0, "broken": 1}

    def test_github_output_names_guard_files(self, evolution, capsys):
        old, new, guards = evolution
        assert main(["evolve", old, new, "--guards", guards, "--format=github"]) == 1
        out = capsys.readouterr().out
        assert "::error " in out
        assert "keep.guard" in out

    def test_strict_flags_degraded(self, tmp_path, capsys):
        old = tmp_path / "old.xml"
        new = tmp_path / "new.xml"
        old.write_text(
            "<d><b><t>X</t><a><n>A</n></a></b><b><t>Y</t><a><n>B</n></a></b></d>"
        )
        new.write_text(
            "<d><b><t>X</t><a><n>A</n></a></b><b><t>Y</t></b></d>"
        )
        guards = tmp_path / "guards"
        guards.mkdir()
        (guards / "g.guard").write_text("MORPH b [ t a [ n ] ]\n")
        args = ["evolve", str(old), str(new), "--guards", str(guards)]
        assert main(args) == 0
        assert main(args + ["--strict"]) == 2
        assert "warning[XM605]" in capsys.readouterr().out

    def test_expect_mismatch_fails(self, evolution, tmp_path, capsys):
        import json

        old, new, guards = evolution
        expect = tmp_path / "expected.json"
        expect.write_text(json.dumps({"keep": "compatible", "titles": "compatible"}))
        code = main(["evolve", old, new, "--guards", guards, "--expect", str(expect)])
        assert code == 1
        err = capsys.readouterr().err
        assert "keep: expected compatible, got broken" in err

    def test_expect_flags_unexpected_guards(self, evolution, tmp_path, capsys):
        import json

        old, new, guards = evolution
        expect = tmp_path / "expected.json"
        expect.write_text(json.dumps({"keep": "broken"}))
        code = main(["evolve", old, new, "--guards", guards, "--expect", str(expect)])
        assert code == 1
        assert "titles: no expectation recorded" in capsys.readouterr().err

    def test_empty_guards_dir_is_an_error(self, evolution, tmp_path, capsys):
        old, new, _guards = evolution
        empty = tmp_path / "none"
        empty.mkdir()
        assert main(["evolve", old, new, "--guards", str(empty)]) == 2
        assert "no .guard files" in capsys.readouterr().err

    def test_db_mode_runs_against_stored_documents(self, evolution, tmp_path, capsys):
        old, new, guards = evolution
        db = str(tmp_path / "evo.db")
        assert main(["shred", "--db", db, "v1", old]) == 0
        assert main(["shred", "--db", db, "v2", new]) == 0
        capsys.readouterr()
        code = main(["evolve", "v1", "v2", "--db", db, "--guards", guards])
        assert code == 1
        assert "keep: broken" in capsys.readouterr().out


class TestGithubFormat:
    def test_check_github_annotations(self, doc, capsys):
        code = main(["check", doc, "MORPH athor [ name ]", "--format=github"])
        assert code == 1
        captured = capsys.readouterr()
        line = captured.out.splitlines()[0]
        assert line.startswith("::error title=XM201")
        assert "athor" in line
        assert "summary" not in captured.out  # summary goes to stderr

    def test_check_github_clean_guard_annotates_only_notices(self, doc, capsys):
        code = main(["check", doc, "MORPH author [ name ]", "--format=github"])
        assert code == 0
        out = capsys.readouterr().out
        assert "::error" not in out and "::warning" not in out
        for line in out.splitlines():
            assert line.startswith("::notice")
