"""Tests for the unified transformation report."""

import repro
from repro.engine.report import full_report


class TestFullReport:
    def test_all_sections_present(self, fig1a):
        interpreter = repro.Interpreter(fig1a)
        result = interpreter.transform("MORPH author [ name ]")
        text = full_report(result, interpreter.index)
        for section in (
            "guard",
            "source shape",
            "target shape",
            "output schema (DTD)",
            "information loss",
            "label resolution",
            "statistics",
        ):
            assert section in text, section

    def test_compile_only_report(self, fig1a):
        interpreter = repro.Interpreter(fig1a)
        result = interpreter.compile("MORPH author [ name ]")
        text = full_report(result)
        assert "compile only" in text
        assert "source shape" not in text  # no index passed

    def test_contents_are_real(self, fig1c):
        interpreter = repro.Interpreter(fig1c)
        result = interpreter.transform(
            "MORPH author [ !title name publisher [ name ] ]"
        )
        text = full_report(result, interpreter.index)
        assert "widening" in text
        assert "<!ELEMENT author" in text
        assert "data.author.book.title" in text
        assert "nodes read" in text
