"""Tests for guarded queries — the paper's Section I scenario end-to-end."""

import pytest

import repro
from repro.errors import GuardTypeError
from repro.typing import GuardType


INTRO_QUERY = (
    "for $a in doc('input')/author "
    "return <data><author><book><title>{$a/book/title/text()}</title></book>"
    "</author></data>"
)


class TestIntroScenario:
    """The motivating example: one query, three shapes."""

    def test_same_query_all_instances(self, fig1_all):
        guarded = repro.GuardedQuery(
            "MORPH author [ name book [ title ] ]",
            "for $a in doc('input')/author return $a/book/title/text()",
        )
        for forest in fig1_all.values():
            outcome = guarded.run(forest)
            assert sorted(outcome.items) == ["X", "Y"]

    def test_unguarded_query_fails_on_wrong_shapes(self, fig1a, fig1c):
        # Without the guard, the paper's query only works on (c).
        query = "for $a in doc('input')/data/author return $a/book/title/text()"
        from repro.xquery import evaluate, QueryContext

        assert evaluate(query, repro.QueryContext.for_forest(fig1a)) == []
        assert evaluate(query, repro.QueryContext.for_forest(fig1c)) == ["X", "Y"]

    def test_guard_type_exposed(self, fig1a):
        guarded = repro.GuardedQuery(
            "MORPH author [ name book [ title ] ]",
            "count(/author)",
        )
        outcome = guarded.run(fig1a)
        assert outcome.guard_type is GuardType.STRONGLY_TYPED
        assert outcome.items == [2.0]

    def test_lossy_guard_blocks_query(self, fig1c):
        guarded = repro.GuardedQuery(
            "MORPH author [ title name publisher [ name ] ]",
            "count(/author)",
        )
        with pytest.raises(GuardTypeError):
            guarded.run(fig1c)

    def test_xml_serialization_of_outcome(self, fig1a):
        guarded = repro.GuardedQuery(
            "MORPH author [ name ]",
            "for $a in /author return <who>{$a/name/text()}</who>",
        )
        outcome = guarded.run(fig1a)
        assert outcome.xml() == "<who>A</who>\n<who>A</who>"

    def test_guard_reusable_across_collections(self, fig1_all):
        guarded = repro.GuardedQuery(
            "MORPH publisher [ name book [ title ] ]",
            "for $p in /publisher where $p/book/title = 'X' return $p/name/text()",
        )
        for key, forest in fig1_all.items():
            assert guarded.run(forest).items == ["W"], key


class TestLazyGuardedQuery:
    def test_lazy_matches_materialized(self, fig1_all):
        query = "for $a in /author return $a/book/title/text()"
        guard = "MORPH author [ name book [ title ] ]"
        for forest in fig1_all.values():
            eager = repro.GuardedQuery(guard, query).run(forest)
            lazy = repro.GuardedQuery(guard, query, materialize=False).run(forest)
            assert lazy.items == eager.items

    def test_lazy_still_type_checks(self, fig1c):
        guarded = repro.GuardedQuery(
            "MORPH author [ title name publisher [ name ] ]",
            "count(/author)",
            materialize=False,
        )
        with pytest.raises(GuardTypeError):
            guarded.run(fig1c)

    def test_lazy_outcome_reports_guard_type(self, fig1a):
        outcome = repro.GuardedQuery(
            "MORPH author [ name ]", "count(/author)", materialize=False
        ).run(fig1a)
        assert outcome.guard_type is GuardType.STRONGLY_TYPED
        assert outcome.items == [2.0]


class TestTransformResultApi:
    def test_compile_only_has_no_forest(self, fig1a):
        result = repro.Interpreter(fig1a).compile("MORPH author [ name ]")
        with pytest.raises(ValueError):
            result.forest

    def test_timings_recorded(self, fig1a):
        result = repro.transform(fig1a, "MORPH author [ name ]")
        assert result.compile_seconds >= 0
        assert result.render_seconds >= 0

    def test_label_report_text(self, fig1a):
        result = repro.transform(fig1a, "MORPH author [ name ]")
        report = result.label_report()
        assert "author" in report
        assert "data.book.author.name" in report

    def test_loss_report_text(self, fig1a):
        result = repro.transform(fig1a, "MORPH author [ name ]")
        assert "strongly-typed" in result.loss_report()

    def test_check_does_not_enforce(self, fig1c):
        # check() reports on a lossy guard instead of raising.
        report = repro.check(fig1c, "MORPH author [ title name publisher [ name ] ]")
        assert report.guard_type is GuardType.WIDENING
