"""Tests for the logical (in situ) transform — architecture option 3."""

import pytest

import repro
from repro.engine.logical import LogicalTransform, guarded_query_lazy
from repro.xquery.evaluator import evaluate

GUARD = "MORPH author [ name book [ title ] ]"


class TestQueryEquivalence:
    """Queries over the virtual view answer exactly like the
    physically transformed document."""

    QUERIES = [
        "for $a in /author return $a/book/title/text()",
        "count(//name)",
        "distinct-values(/author/name)",
        "for $a in /author where $a/book/title = 'X' return $a/name/text()",
        "for $a in /author return <r>{$a/name}{$a/book/title}</r>",
    ]

    @pytest.mark.parametrize("query", QUERIES)
    def test_same_answers(self, fig1_all, query):
        for key, forest in fig1_all.items():
            lazy_items, _view = guarded_query_lazy(forest, GUARD, query)
            physical = repro.GuardedQuery(GUARD, query).run(forest)
            assert _comparable(lazy_items) == _comparable(physical.items), (key, query)

    def test_attribute_navigation(self):
        forest = repro.parse_document(
            '<r><item id="i1"><price>3</price></item>'
            '<item id="i2"><price>5</price></item></r>'
        )
        items, _ = guarded_query_lazy(
            forest, "MORPH item [ id price ]", "for $i in /item return $i/@id"
        )
        assert [n.text for n in items] == ["i1", "i2"]


class TestLaziness:
    def test_nothing_materialized_up_front(self, fig1a):
        view = LogicalTransform(fig1a, GUARD)
        assert view.nodes_materialized == 0

    def test_partial_access_partial_cost(self, fig1a):
        view = LogicalTransform(fig1a, GUARD)
        first_author = view.roots[0]
        first_author.children  # expand one node
        partial = view.nodes_materialized
        # Full materialization is strictly more work.
        for root in view.roots:
            for node in root.iter_subtree():
                pass
        assert view.nodes_materialized > partial

    def test_counting_roots_does_not_expand_subtrees(self, fig1a):
        view = LogicalTransform(fig1a, GUARD)
        items = evaluate("count(/author)", view.query_context())
        assert items == [2.0]
        # Only the roots (2 authors) were materialized.
        assert view.nodes_materialized == 2

    def test_expansion_cached(self, fig1a):
        view = LogicalTransform(fig1a, GUARD)
        root = view.roots[0]
        first = root.children
        assert root.children is first


class TestViewMetadata:
    def test_loss_report_available(self, fig1c):
        view = LogicalTransform(fig1c, GUARD)
        assert str(view.loss.guard_type) == "strongly-typed"

    def test_lossy_guard_still_checked_up_front(self, fig1c):
        # The logical view compiles the guard, so typing still gates it.
        view = LogicalTransform(
            fig1c, "CAST (MORPH author [ title publisher [ name ] ])"
        )
        assert not view.loss.non_additive

    def test_copy_subtree_materializes(self, fig1a):
        view = LogicalTransform(fig1a, GUARD)
        real = view.roots[0].copy_subtree()
        from repro.xmltree.node import XmlNode

        assert isinstance(real, XmlNode)
        assert real.find("name").text == "A"


def _comparable(items):
    out = []
    for item in items:
        if hasattr(item, "copy_subtree"):
            node = item.copy_subtree() if not hasattr(item, "renumber") else item
            out.append(node.canonical() if hasattr(node, "canonical") else repro.serialize(node))
        else:
            out.append(item)
    return out
