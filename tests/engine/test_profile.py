"""Tests for pipeline tracing and EXPLAIN ANALYZE (repro.engine.profile)."""

import json

import pytest

import repro
from repro import obs
from repro.engine.profile import (
    profile_db_transform,
    profile_document,
    profile_transform,
)
from repro.storage import Database

from tests.conftest import FIG1A

GUARD = "MORPH author [ name book [ title ] ]"


@pytest.fixture
def forest():
    return repro.parse_forest(FIG1A)


class TestPipelineSpans:
    def test_transform_emits_stage_spans(self, forest):
        with obs.tracing() as tracer:
            repro.transform(forest, GUARD)
        names = tracer.span_names()
        for expected in (
            "pipeline.compile",
            "lang.parse",
            "typing.type-analysis",
            "typing.loss",
            "typing.enforce",
            "pipeline.render",
        ):
            assert expected in names
        assert any(name.startswith("algebra.") for name in names)

    def test_result_seconds_match_spans(self, forest):
        with obs.tracing() as tracer:
            result = repro.transform(forest, GUARD)
        assert result.compile_seconds == tracer.find("pipeline.compile").duration
        assert result.render_seconds == tracer.find("pipeline.render").duration

    def test_seconds_populated_when_disabled(self, forest):
        """Backward compatibility: timings survive without a tracer."""
        result = repro.transform(forest, GUARD)
        assert result.compile_seconds > 0.0
        assert result.render_seconds > 0.0

    def test_render_counters(self, forest):
        with obs.tracing() as tracer:
            result = repro.transform(forest, GUARD)
        counters = tracer.metrics.counters
        assert counters["render.nodes_emitted"] == result.rendered.nodes_written
        assert counters["render.joins"] == result.rendered.joins
        assert counters["join.comparisons"] > 0
        assert tracer.metrics.histogram("join.pairs").count == result.rendered.joins

    def test_rows_by_type_tallies_every_output_node(self, forest):
        result = repro.transform(forest, GUARD)
        assert sum(result.rendered.rows_by_type.values()) == result.rendered.nodes_written
        for root in result.target_shape.roots():
            assert result.rendered.rows_for(root) == 2  # two authors


class TestProfileTransform:
    def test_plan_rows_annotated(self, forest):
        report = profile_transform(forest, GUARD)
        rows = report.plan_rows()
        assert [(depth, name, actual) for depth, name, actual, _ in rows] == [
            (0, "author", 2),
            (1, "name", 2),
            (1, "book", 2),
            (2, "title", 2),
        ]

    def test_pretty_contains_plan_and_timings(self, forest):
        text = profile_transform(forest, GUARD).pretty()
        assert "EXPLAIN ANALYZE" in text
        assert "rows=2" in text
        assert "lang.parse" in text
        assert "typing.type-analysis" in text
        assert "pipeline.render" in text
        assert "stage 0: MorphOp" in text
        assert "nodes_emitted=" in text

    def test_trace_json_is_valid(self, forest):
        for line in profile_transform(forest, GUARD).trace_json().splitlines():
            json.loads(line)


class TestProfileDatabase:
    def test_db_profile_has_storage_actuals(self, tmp_path):
        with Database(str(tmp_path / "p.db")) as db:
            db.store_document("books", FIG1A)
            db.drop_cache()
            report = profile_db_transform(db, "books", GUARD)
        assert report.storage is not None
        assert report.storage["blocks"] >= 0
        assert 0.0 <= report.storage["buffer_hit_ratio"] <= 1.0
        counters = report.tracer.metrics.counters
        assert counters["btree.page_reads"] > 0
        assert counters["storage.cpu_ops"] > 0
        assert "buffer.hit_ratio" in report.tracer.metrics.gauges

    def test_db_profile_leaves_metrics_detached(self, tmp_path):
        with Database(str(tmp_path / "q.db")) as db:
            db.store_document("books", FIG1A)
            profile_db_transform(db, "books", GUARD)
            assert db.stats.metrics is None

    def test_profile_document_covers_whole_pipeline(self):
        report = profile_document(FIG1A, GUARD)
        names = report.tracer.span_names()
        for expected in (
            "storage.shred",
            "lang.parse",
            "typing.type-analysis",
            "pipeline.render",
        ):
            assert expected in names
        assert report.storage["blocks"] > 0
        assert "storage (modelled):" in report.pretty()
        # Same output as the plain in-memory transform.
        direct = repro.transform(repro.parse_forest(FIG1A), GUARD)
        assert report.result.xml() == direct.xml()

    def test_trace_round_trips_with_storage_counters(self):
        report = profile_document(FIG1A, GUARD)
        trace = obs.from_json_lines(report.trace_json())
        assert trace.find("storage.shred") is not None
        assert trace.metrics.counter("storage.blocks_written") > 0
