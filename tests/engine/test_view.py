"""Tests for XQuery view generation (architecture option 2).

The generated view, evaluated on the *source* document, must produce
the same data as physically rendering the guard (architecture 1).
"""

import pytest

import repro
from repro.engine.view import ViewGenerationError, shape_to_xquery
from repro.workloads import generate_dblp
from repro.xmltree import XmlForest
from repro.xquery import QueryContext, evaluate


def view_of(forest, guard):
    interpreter = repro.Interpreter(forest)
    compiled = interpreter.compile(f"CAST ({guard})")
    return shape_to_xquery(
        compiled.target_shape, interpreter.index.is_attribute.get
    ), interpreter


def assert_view_matches_render(forest, guard):
    query, interpreter = view_of(forest, guard)
    items = evaluate(query, QueryContext.for_forest(forest))
    view_forest = XmlForest([item.copy_subtree() for item in items]).renumber()
    rendered = interpreter.transform(f"CAST ({guard})")
    assert view_forest.canonical() == rendered.forest.canonical(), query


class TestViewEquivalence:
    def test_descendant_shape(self, fig1a):
        assert_view_matches_render(fig1a, "MORPH book [ title ]")

    def test_paper_guard_on_all_instances(self, fig1_all):
        for forest in fig1_all.values():
            assert_view_matches_render(forest, "MORPH author [ name book [ title ] ]")

    def test_rearranging_guard(self, fig1b):
        # In (b), book is *below* publisher: the view needs `..` joins.
        assert_view_matches_render(fig1b, "MORPH book [ publisher [ name ] ]")

    def test_cousin_join(self, fig1a):
        # title and publisher.name are cousins: up to book, down again.
        assert_view_matches_render(fig1a, "MORPH title [ publisher.name ]")

    def test_attributes_in_view(self):
        forest = repro.parse_document(
            '<r><item id="i1"><price>3</price></item>'
            '<item id="i2"><price>5</price></item></r>'
        )
        assert_view_matches_render(forest, "MORPH item [ id price ]")

    def test_dblp_medium_guard(self):
        forest = generate_dblp(60)
        assert_view_matches_render(forest, "MORPH author [ title [ year ] ]")


class TestGeneratedText:
    def test_one_for_per_type(self, fig1a):
        query, _ = view_of(fig1a, "MORPH author [ name book [ title ] ]")
        # The paper: the view needs one variable binding per type.
        assert query.count("for $") == 4

    def test_relative_join_paths(self, fig1b):
        query, _ = view_of(fig1b, "MORPH book [ publisher [ name ] ]")
        assert "../" in query or "/.." in query

    def test_rooted_outer_loop(self, fig1a):
        query, _ = view_of(fig1a, "MORPH author [ name ]")
        assert "in /data/book/author " in query


class TestLimits:
    def test_new_types_rejected(self, fig1a):
        interpreter = repro.Interpreter(fig1a)
        compiled = interpreter.compile("MUTATE (NEW scribe) [ author ]")
        with pytest.raises(ViewGenerationError):
            shape_to_xquery(compiled.target_shape)

    def test_clone_rejected(self, fig1a):
        interpreter = repro.Interpreter(fig1a)
        compiled = interpreter.compile("CAST MUTATE author [ CLONE title ]")
        with pytest.raises(ViewGenerationError):
            shape_to_xquery(compiled.target_shape)

    def test_restrict_rejected(self, fig1a):
        interpreter = repro.Interpreter(fig1a)
        compiled = interpreter.compile("CAST MORPH (RESTRICT name [ author ])")
        with pytest.raises(ViewGenerationError):
            shape_to_xquery(compiled.target_shape)
