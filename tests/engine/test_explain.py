"""Tests for the guard explainer."""

import pytest

from repro.engine.explain import explain_guard
from repro.lang import parse_guard


class TestExplain:
    def test_morph(self):
        text = explain_guard("MORPH author [ name book [ title ] ]")
        assert "ONLY these types" in text
        assert "'author' at the top" in text
        assert "'name', placed under its closest parent above" in text
        assert "'book'" in text and "'title'" in text

    def test_mutate(self):
        text = explain_guard("MUTATE book [ publisher ]")
        assert "rearrange the FULL source shape" in text
        assert "stays where it was" in text

    def test_translate(self):
        text = explain_guard("TRANSLATE author -> writer, name -> label")
        assert "rename every 'author' type to 'writer'" in text
        assert "rename every 'name' type to 'label'" in text

    def test_compose(self):
        text = explain_guard("MORPH a | MUTATE b | TRANSLATE x -> y")
        assert "pipeline of 3 stages" in text
        assert "stage 1:" in text and "stage 3:" in text

    def test_casts(self):
        assert "LOSE" in explain_guard("CAST-NARROWING MORPH a")
        assert "MANUFACTURE" in explain_guard("CAST-WIDENING MORPH a")
        assert "weakly-typed" in explain_guard("CAST MORPH a")
        assert "placeholder" in explain_guard("TYPE-FILL MORPH a")

    def test_bang(self):
        text = explain_guard("MORPH author [ !title ]")
        assert "accepting any information loss" in text

    def test_stars(self):
        text = explain_guard("MORPH book [* a [**]]")
        assert "children from the source (*)" in text
        assert "whole source subtree (**)" in text

    def test_drop_clone_restrict_new(self):
        text = explain_guard(
            "MUTATE (NEW wrap) [ (DROP a) (CLONE b) (RESTRICT c [ d ]) ]"
        )
        assert "brand-new element <wrap>" in text
        assert "remove the type" in text
        assert "COPY" in text
        assert "closest partners" in text

    def test_accepts_parsed_ast(self):
        node = parse_guard("MORPH a")
        assert "ONLY these types" in explain_guard(node)

    def test_every_corpus_guard_explains(self):
        from tests.corpus.cases import CASES

        for case in CASES:
            text = explain_guard(case.guard)
            assert text.strip(), case.name
