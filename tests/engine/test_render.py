"""Tests for the Render algorithm (Section VII)."""

import repro
from repro.xmltree import parse_document


def rendered_xml(forest, guard, indent=None):
    return repro.transform(forest, guard).xml(indent=indent)


def canonical(xml_text):
    return repro.parse_forest(xml_text).canonical()


class TestPaperWorkedExample:
    """Section VII renders MORPH author [ name book [ title ] ] on (a)."""

    def test_output_structure(self, fig1a):
        result = repro.transform(fig1a, "MORPH author [ name book [ title ] ]")
        expected = canonical(
            "<author><name>A</name><book><title>X</title></book></author>"
            "<author><name>A</name><book><title>Y</title></book></author>"
        )
        assert result.forest.canonical() == expected

    def test_instances_a_and_b_agree(self, fig1a, fig1b):
        guard = "MORPH author [ name book [ title ] ]"
        first = repro.transform(fig1a, guard)
        second = repro.transform(fig1b, guard)
        assert first.forest.canonical() == second.forest.canonical()

    def test_grouping_preserved_from_c(self, fig1c):
        result = repro.transform(fig1c, "MORPH author [ name book [ title ] ]")
        expected = canonical(
            "<author><name>A</name><book><title>X</title></book>"
            "<book><title>Y</title></book></author>"
        )
        assert result.forest.canonical() == expected

    def test_document_order_output(self, fig1a):
        result = repro.transform(fig1a, "MORPH author [ name book [ title ] ]")
        # First author's book holds title X (source order kept).
        first_author = result.forest.roots[0]
        assert first_author.find("book").find("title").text == "X"

    def test_provenance_maps_to_source(self, fig1a):
        result = repro.transform(fig1a, "MORPH title")
        for root in result.forest.roots:
            origin = result.rendered.source_of(root)
            assert origin is not None
            assert origin.name == "title"
            assert origin.text == root.text


class TestValuesAndAttributes:
    def test_text_values_copied(self, fig1a):
        result = repro.transform(fig1a, "MORPH publisher [ name ]")
        names = sorted(n.text for n in result.forest.find_named("name"))
        assert names == ["V", "W"]

    def test_attributes_travel_with_types(self):
        forest = parse_document('<r><item id="i1"><price>3</price></item></r>')
        result = repro.transform(forest, "MORPH item [ id price ]")
        item = result.forest.roots[0]
        # id was an attribute vertex; it renders back as an attribute.
        assert item.attribute("id").text == "i1"
        assert item.find("price").text == "3"


class TestDuplication:
    """The 'write cost is quadratic' case: one node copied to many parents."""

    def test_shared_child_copied_per_parent(self):
        # Two authors in one book: the single title is closest to both.
        forest = parse_document(
            "<data><book><title>T</title>"
            "<author><name>A</name></author>"
            "<author><name>B</name></author>"
            "</book></data>"
        )
        result = repro.transform(forest, "CAST-WIDENING MORPH author [ name title ]")
        titles = result.forest.find_named("title")
        assert len(titles) == 2
        assert all(t.text == "T" for t in titles)

    def test_nodes_written_counts_copies(self):
        forest = parse_document(
            "<data><book><title>T</title>"
            "<author><name>A</name></author>"
            "<author><name>B</name></author>"
            "</book></data>"
        )
        result = repro.transform(forest, "CAST-WIDENING MORPH author [ name title ]")
        # 2 authors + 2 names + 2 title copies.
        assert result.rendered.nodes_written == 6


class TestOperators:
    def test_mutate_b_to_a_rendering(self, fig1a, fig1b):
        mutated = repro.transform(fig1b, "MUTATE book [ publisher [ name ] ]")
        assert mutated.forest.canonical() == fig1a.canonical()

    def test_new_wraps_each_author(self, fig1a):
        result = repro.transform(fig1a, "MUTATE (NEW scribe) [ author ]")
        scribes = result.forest.find_named("scribe")
        assert len(scribes) == 2
        for scribe in scribes:
            assert [c.name for c in scribe.children] == ["author"]

    def test_new_as_root_collects_all(self, fig1a):
        result = repro.transform(fig1a, "MORPH (NEW bibliography) [ author [ name ] ]")
        roots = result.forest.roots
        assert len(roots) == 2  # one wrapper per author (leading child)
        assert all(r.name == "bibliography" for r in roots)

    def test_clone_duplicates_data(self, fig1a):
        result = repro.transform(fig1a, "MUTATE author [ CLONE title ]")
        titles = result.forest.find_named("title")
        assert len(titles) == 4  # two originals + two copies

    def test_translate_renames_output(self, fig1a):
        result = repro.transform(
            fig1a, "MORPH author [ name ] | TRANSLATE author -> writer"
        )
        assert [r.name for r in result.forest.roots] == ["writer", "writer"]

    def test_restrict_filters_instances(self):
        # Two names: one belongs to an author, one to a publisher; the
        # RESTRICT keeps only the author-adjacent name instances.
        forest = parse_document(
            "<data><book>"
            "<author><name>A</name></author>"
            "<publisher><name>W</name></publisher>"
            "</book></data>"
        )
        result = repro.transform(
            forest, "CAST-NARROWING MORPH (RESTRICT name [ author ])"
        )
        names = result.forest.find_named("name")
        assert [n.text for n in names] == ["A"]

    def test_type_fill_renders_placeholder(self, fig1a):
        result = repro.transform(
            fig1a, "CAST (TYPE-FILL MORPH author [ name isbn ])"
        )
        isbns = result.forest.find_named("isbn")
        assert len(isbns) == 2
        assert all(not node.children and not node.text for node in isbns)


class TestCounters:
    def test_reads_and_joins_counted(self, fig1a):
        result = repro.transform(fig1a, "MORPH author [ name book [ title ] ]")
        assert result.rendered.nodes_read > 0
        assert result.rendered.joins >= 2
        assert result.rendered.nodes_written == result.forest.node_count()

    def test_output_renumbered(self, fig1a):
        result = repro.transform(fig1a, "MORPH author [ name book [ title ] ]")
        ids = [n.dewey for n in result.forest.iter_nodes()]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
