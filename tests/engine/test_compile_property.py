"""Property-based parity: the specialized renderer IS the interpreter.

The compiled renderer's one correctness claim is byte-identity with the
interpretive Render algorithm on every plan it accepts.  We fuzz that
claim directly: random small documents over a tiny tag alphabet (the
shared ``tests.strategies`` corpus — small alphabets maximize repeated
types and interesting closest joins), random guards over the same
alphabet, and for every plan that specializes, the compiled output must
match the interpreter node for node — names, text, Dewey identifiers,
provenance size and every render counter.

Guards that fail to type-check on a particular document are out of
scope (both engines never run); plans where specialization declines
(``try_compile_render`` returned ``None``) are equally out of scope but
*counted* — the suite would silently prove nothing if every plan fell
back, so one sentinel test pins that the common forms do compile.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro
from repro.engine.interpreter import Interpreter
from repro.errors import XMorphError
from repro.xmltree.serializer import serialize

from tests.strategies import TAGS, documents

GUARD_FORMS = [
    "MORPH {x}",
    "MORPH {x} [ {y} ]",
    "MORPH {x} [ {y} [ {z} ] ]",
    "MORPH {x} [ {y} {z} ]",
    "MUTATE {x} [ {y} ]",
    "MORPH (RESTRICT {x} [ {y} ])",
    "MUTATE (NEW w) [ {x} {y} ]",
    "TYPE-FILL MORPH {x} [ {y} ]",
]


@st.composite
def guards(draw):
    form = draw(st.sampled_from(GUARD_FORMS))
    x, y, z = (draw(st.sampled_from(TAGS)) for _ in range(3))
    return form.format(x=x, y=y, z=z)


def compile_pair(forest, guard):
    """(interpreted result, compiled result) for one plan, or None when
    the guard does not apply to this document."""
    text = serialize(forest)
    try:
        interp = Interpreter(repro.parse_forest(text))
        plan_i = interp.compile(f"CAST ({guard})")
        comp = Interpreter(repro.parse_forest(text), compile_renders=True)
        plan_c = comp.compile(f"CAST ({guard})")
    except XMorphError:
        return None
    if plan_c.compiled_render is None:
        return None
    return interp.render_compiled(plan_i), comp.render_compiled(plan_c)


def dewey_walk(forest):
    out = []

    def visit(node):
        out.append((node.name, node.text, str(node.dewey)))
        for child in node.children:
            visit(child)

    for root in forest.roots:
        visit(root)
    return out


class TestCompiledParityProperty:
    @given(forest=documents(), guard=guards())
    @settings(max_examples=120, deadline=None)
    def test_byte_identical(self, forest, guard):
        pair = compile_pair(forest, guard)
        assume(pair is not None)
        res_i, res_c = pair
        ri, rc = res_i.rendered, res_c.rendered
        assert rc.compiled and not ri.compiled
        assert serialize(rc.forest) == serialize(ri.forest)
        assert dewey_walk(rc.forest) == dewey_walk(ri.forest)
        assert rc.nodes_written == ri.nodes_written
        assert rc.nodes_read == ri.nodes_read
        assert rc.joins == ri.joins
        assert len(rc.provenance) == len(ri.provenance)
        assert sorted(rc.rows_by_type.values()) == sorted(ri.rows_by_type.values())

    def test_common_forms_do_compile(self):
        """Sentinel: specialization must not silently decline the basic
        forms, or the property above vacuously passes."""
        forest = repro.parse_forest(
            "<r><a><b>x</b><c>1</c></a><a><b>y</b><c>2</c></a></r>"
        )
        compiled = 0
        for guard in ("MORPH a [ b ]", "MORPH a [ b [ c ] ]", "MUTATE b [ a ]"):
            interp = Interpreter(forest, compile_renders=True)
            plan = interp.compile(f"CAST ({guard})")
            compiled += plan.compiled_render is not None
        assert compiled == 3


class TestEvolutionInvalidationProperty:
    @given(forest=documents())
    @settings(max_examples=25, deadline=None)
    def test_non_compatible_verdicts_drop_compiled_plans(self, forest):
        """After ``apply_evolution``, a surviving cached plan still
        carries its compiled renderer and a dropped one is gone — no
        half-invalidated state where a stale specialized renderer
        outlives its plan."""
        from repro.cache import CompiledPlan, PlanCache

        try:
            interp = Interpreter(forest, compile_renders=True)
            result = interp.compile("CAST (MORPH a [ b ])")
        except XMorphError:
            assume(False)
        assume(result.compiled_render is not None)

        cache = PlanCache(capacity=8)
        plan = CompiledPlan.from_result(result, fingerprint="doc" + "0" * 13)
        cache.put(plan)
        other = CompiledPlan.from_result(result, fingerprint="doc" + "0" * 13)
        other = type(other)(
            guard="other-guard",
            fingerprint=other.fingerprint,
            target_shape=other.target_shape,
            loss=other.loss,
            evaluation=other.evaluation,
            compile_seconds=0.0,
            compiled_render=other.compiled_render,
        )
        cache.put(other)

        outcome = cache.apply_evolution(
            plan.fingerprint,
            {plan.guard: "compatible", "other-guard": "degraded"},
        )
        assert outcome == {"kept": 1, "invalidated": 1}
        survivor = cache.get(plan.guard, plan.fingerprint)
        assert survivor is not None
        assert survivor.compiled_render is result.compiled_render
        assert cache.get("other-guard", plan.fingerprint) is None
