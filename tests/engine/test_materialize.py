"""Tests for materialized transformations and update propagation."""

import repro
from repro.engine.materialize import MaterializedTransform
from repro.xmltree import element


GUARD = "MORPH author [ name book [ title ] ]"


class TestValueUpdates:
    def test_text_update_propagates_to_copies(self, fig1a):
        view = MaterializedTransform(fig1a, GUARD)
        title = fig1a.find_named("title")[0]
        updated = view.update_text(title, "X (2nd ed.)")
        assert len(updated) == 1
        assert "X (2nd ed.)" in view.xml()

    def test_duplicated_node_updates_everywhere(self):
        # One title closest to two authors: both copies must update.
        forest = repro.parse_document(
            "<data><book><title>T</title>"
            "<author><name>A</name></author>"
            "<author><name>B</name></author></book></data>"
        )
        view = MaterializedTransform(forest, "CAST-WIDENING MORPH author [ name title ]")
        title = forest.find_named("title")[0]
        updated = view.update_text(title, "T2")
        assert len(updated) == 2
        assert view.xml().count("T2") == 2

    def test_update_does_not_mark_stale(self, fig1a):
        view = MaterializedTransform(fig1a, GUARD)
        view.update_text(fig1a.find_named("name")[0], "Anna")
        assert not view.stale

    def test_copies_of_unrendered_node_empty(self, fig1a):
        view = MaterializedTransform(fig1a, "MORPH author [ name ]")
        publisher = fig1a.find_named("publisher")[0]
        assert view.copies_of(publisher) == []


class TestStructuralUpdates:
    def test_insert_marks_stale_and_refresh_renders(self, fig1a):
        view = MaterializedTransform(fig1a, GUARD)
        book = fig1a.roots[0].children[0]
        view.insert_child(book.find("author"), element("name", text="Ghost"))
        assert view.stale
        # Accessing the forest refreshes automatically.
        names = [n.text for n in view.forest.find_named("name")]
        assert "Ghost" in names
        assert not view.stale

    def test_remove_propagates_after_refresh(self, fig1a):
        view = MaterializedTransform(fig1a, GUARD)
        second_book = fig1a.roots[0].children[1]
        view.remove_node(second_book)
        titles = [n.text for n in view.forest.find_named("title")]
        assert titles == ["X"]

    def test_refresh_rebuilds_provenance(self, fig1a):
        view = MaterializedTransform(fig1a, GUARD)
        book = fig1a.roots[0].children[0]
        view.insert_child(book, element("title", text="extra"))
        view.refresh()
        # Updates keep working against the refreshed materialization.
        title = fig1a.find_named("title")[0]
        assert view.update_text(title, "renamed")
        assert "renamed" in view.xml()
