"""Tests for the streaming renderer: must agree with the batch renderer."""

import pytest

import repro
from repro.closeness import DocumentIndex
from repro.engine.stream import render_stream, render_to_string
from repro.workloads import generate_dblp
from repro.xmltree import parse_forest
from io import StringIO


def both_renders(forest, guard):
    """(batch forest, streamed text) for the same guard."""
    interpreter = repro.Interpreter(forest)
    result = interpreter.transform(f"CAST ({guard})")
    compiled = interpreter.compile(f"CAST ({guard})")
    streamed = render_to_string(compiled.target_shape, interpreter.index)
    return result, streamed


GUARDS = [
    "MORPH author [ name book [ title ] ]",
    "MORPH publisher [ name book [ title ] ]",
    "MUTATE data",
    "MUTATE book [ publisher [ name ] ]",
    "MORPH author [ name ] | TRANSLATE author -> writer",
    "MUTATE (NEW scribe) [ author ]",
    "MORPH (RESTRICT name [ author ])",
]


class TestAgreesWithBatchRenderer:
    @pytest.mark.parametrize("guard", GUARDS)
    def test_same_output_fig1a(self, fig1a, guard):
        result, streamed = both_renders(fig1a, guard)
        assert parse_forest(streamed).canonical() == result.forest.canonical()

    @pytest.mark.parametrize("guard", GUARDS[:4])
    def test_same_output_fig1c(self, fig1c, guard):
        result, streamed = both_renders(fig1c, guard)
        assert parse_forest(streamed).canonical() == result.forest.canonical()

    def test_dblp_medium_guard(self):
        forest = generate_dblp(120)
        result, streamed = both_renders(forest, "MORPH author [ title [ year ] ]")
        assert parse_forest(streamed).canonical() == result.forest.canonical()

    def test_attributes_stream_into_start_tags(self):
        forest = repro.parse_document('<r><item id="i1"><price>3</price></item></r>')
        _result, streamed = both_renders(forest, "MORPH item [ id price ]")
        assert 'id="i1"' in streamed


class TestStreamingBehaviour:
    def test_stats_counted(self, fig1a):
        interpreter = repro.Interpreter(fig1a)
        compiled = interpreter.compile("MORPH author [ name ]")
        sink = StringIO()
        stats = render_stream(compiled.target_shape, interpreter.index, sink)
        assert stats.nodes_written == 4  # 2 authors + 2 names
        assert stats.characters == len(sink.getvalue())
        assert stats.joins >= 1

    def test_indented_output_parses(self, fig1a):
        interpreter = repro.Interpreter(fig1a)
        compiled = interpreter.compile("MORPH author [ name book [ title ] ]")
        text = render_to_string(compiled.target_shape, interpreter.index, indent=2)
        assert "\n" in text
        assert parse_forest(text).canonical() == interpreter.transform(
            "MORPH author [ name book [ title ] ]"
        ).forest.canonical()

    def test_incremental_writes(self, fig1a):
        """Output arrives in many small writes, not one big one."""

        class CountingSink:
            def __init__(self):
                self.writes = 0
                self.pieces = []

            def write(self, text):
                self.writes += 1
                self.pieces.append(text)

        interpreter = repro.Interpreter(fig1a)
        compiled = interpreter.compile("MORPH author [ name book [ title ] ]")
        sink = CountingSink()
        render_stream(compiled.target_shape, interpreter.index, sink)
        assert sink.writes > 10
