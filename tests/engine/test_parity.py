"""Batch/stream parity: both renderers must produce identical output.

The streaming renderer (:mod:`repro.engine.stream`) is specified as a
serialization of exactly the forest the batch renderer
(:mod:`repro.engine.render`) builds.  This suite pins that property
across the ``examples/guards/`` corpus, the workload generators, and
the special shape types (RESTRICT, NEW, TYPE-FILL) — including the
TYPE-FILL placeholder case for a *source-backed* synthesized type with
an empty source sequence, which the streaming renderer used to drop.
"""

import os

import pytest

import repro
from repro.closeness import DocumentIndex
from repro.engine.render import render
from repro.engine.stream import render_to_string
from repro.shape.cardinality import Card
from repro.shape.shape import Shape
from repro.shape.types import ShapeType
from repro.workloads import generate_dblp, generate_xmark
from repro.xmltree import parse_forest
from repro.xmltree.serializer import serialize

GUARD_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples", "guards")


def corpus_guards() -> list[str]:
    guards = []
    for entry in sorted(os.listdir(GUARD_DIR)):
        if not entry.endswith(".guard"):
            continue
        with open(os.path.join(GUARD_DIR, entry), encoding="utf-8") as handle:
            text = " ".join(
                line.strip()
                for line in handle
                if line.strip() and not line.lstrip().startswith("#")
            )
        guards.append(text)
    return guards


def assert_parity(forest, guard):
    interpreter = repro.Interpreter(forest)
    result = interpreter.transform(guard)
    streamed = render_to_string(result.target_shape, interpreter.index)
    assert parse_forest(streamed).canonical() == result.forest.canonical(), (
        f"batch/stream divergence for {guard!r}:\n"
        f"batch:  {serialize(result.forest)}\nstream: {streamed}"
    )


class TestGuardCorpusParity:
    """Every shipped example guard, over its shipped example document."""

    @pytest.fixture(scope="class")
    def books(self):
        with open(os.path.join(GUARD_DIR, "books.xml"), encoding="utf-8") as handle:
            return repro.parse_forest(handle.read())

    @pytest.mark.parametrize("guard", corpus_guards())
    def test_corpus_guard(self, books, guard):
        assert_parity(books, guard)


class TestWorkloadParity:
    """Generated workloads with the cache-relevant guard families."""

    DBLP_GUARDS = [
        "CAST MORPH author [ title [ year ] ]",
        "CAST MORPH dblp [ author [ title [ year [ pages ] url ] ] ]",
        "CAST MORPH (RESTRICT year [ ee ])",
        "CAST MORPH (RESTRICT article [ ee crossref ])",
        "CAST (MUTATE (NEW record) [ author title ])",
        "CAST (TYPE-FILL MORPH article [ title isbn ])",
    ]

    @pytest.fixture(scope="class")
    def dblp(self):
        return generate_dblp(80)

    @pytest.mark.parametrize("guard", DBLP_GUARDS)
    def test_dblp(self, dblp, guard):
        assert_parity(dblp, guard)

    def test_xmark(self):
        forest = generate_xmark(0.02)
        assert_parity(forest, "CAST MORPH item [ name ]")


class TestSpecialTypesParity:
    def test_restrict(self, fig1a):
        assert_parity(fig1a, "CAST MORPH (RESTRICT name [ author ])")

    def test_new_wrapper(self, fig1a):
        assert_parity(fig1a, "CAST (MUTATE (NEW scribe) [ author ])")

    def test_type_fill_missing_label(self, fig1a):
        # TYPE-FILL invents an unbacked placeholder (source is None).
        assert_parity(fig1a, "CAST (TYPE-FILL MORPH author [ name isbn ])")

    def test_type_fill_source_backed_empty_sequence(self):
        """The case the streaming renderer used to drop silently.

        A synthesized type *with* a source whose node sequence is empty
        must render one placeholder per parent in both renderers.  Such
        types arise when a compiled shape is evaluated against an index
        where the backing label has no instances (e.g. a shape-identical
        document missing the optional label).
        """
        forest = repro.parse_forest("<data><a><b>x</b></a><a><b>y</b></a></data>")
        index = DocumentIndex(forest)
        phantom = index.type_table.intern(("data", "a", "phantom"))
        assert index.nodes_of(phantom) == []

        by_name = {t.dotted: t for t in index.types()}
        shape = Shape()
        root = ShapeType.for_source(by_name["data.a"])
        placeholder = ShapeType(
            source=phantom, out_name="phantom", synthesized=True
        )
        child = ShapeType.for_source(by_name["data.a.b"])
        shape.add_type(root)
        shape.add_type(placeholder)
        shape.add_type(child)
        shape.add_edge(root, placeholder, Card(1, 1))
        shape.add_edge(root, child, Card(0, None))

        batch = render(shape, index)
        streamed = render_to_string(shape, index)
        assert parse_forest(streamed).canonical() == batch.forest.canonical()
        # And the placeholders genuinely appear, once per parent instance.
        assert streamed.count("<phantom/>") == 2
