"""The specialized plan renderer (repro.engine.compile) and its cache
carry-through: byte-identical parity with the interpreter, counter and
trace parity, the plan-cache bugfixes that rode along, and the
single-fetch fix in the interpretive renderer.
"""

import os

import pytest

import repro
from repro import obs
from repro.cache import CompiledPlan, PlanCache, shape_fingerprint
from repro.closeness import DocumentIndex
from repro.engine.compile import CompiledRender
from repro.engine.interpreter import Interpreter
from repro.engine.profile import profile_document
from repro.storage import Database
from repro.workloads import generate_dblp
from repro.xmltree.serializer import serialize

from tests.conftest import FIG1A
from tests.engine.test_parity import GUARD_DIR, corpus_guards

DBLP_GUARDS = [
    "CAST MORPH author [ title [ year ] ]",
    "CAST MORPH dblp [ author [ title [ year [ pages ] url ] ] ]",
    "CAST MORPH (RESTRICT year [ ee ])",
    "CAST MORPH (RESTRICT article [ ee crossref ])",
    "CAST (MUTATE (NEW record) [ author title ])",
    "CAST (TYPE-FILL MORPH article [ title isbn ])",
]


def named_rows(shape, rows_by_type):
    """rows_by_type re-keyed by out_name (id() keys differ per shape)."""
    named: dict[str, int] = {}

    def visit(vertex):
        if id(vertex) in rows_by_type:
            named[vertex.out_name] = named.get(vertex.out_name, 0) + rows_by_type[
                id(vertex)
            ]
        for child in shape.children(vertex):
            visit(child)

    for root in shape.roots():
        visit(root)
    return named


def render_both(forest, guard):
    """(interpreter RenderResult+shape, compiled RenderResult+shape).

    Each engine gets a *fresh* forest copy and index so join-memo
    warmth cannot leak between them.
    """
    text = serialize(forest)

    interp = Interpreter(repro.parse_forest(text))
    plan_i = interp.compile(guard)
    res_i = interp.render_compiled(plan_i)
    assert res_i.rendered is not None and not res_i.rendered.compiled

    comp = Interpreter(repro.parse_forest(text), compile_renders=True)
    plan_c = comp.compile(guard)
    assert plan_c.compiled_render is not None, "specialization unexpectedly fell back"
    res_c = comp.render_compiled(plan_c)
    assert res_c.rendered is not None and res_c.rendered.compiled
    return (res_i, plan_i.evaluation.shape), (res_c, plan_c.evaluation.shape)


def assert_identical(forest, guard):
    (res_i, shape_i), (res_c, shape_c) = render_both(forest, guard)
    ri, rc = res_i.rendered, res_c.rendered
    assert rc.forest.canonical() == ri.forest.canonical()
    assert serialize(rc.forest) == serialize(ri.forest)
    assert _dewey_walk(rc.forest) == _dewey_walk(ri.forest)
    assert rc.nodes_written == ri.nodes_written
    assert rc.nodes_read == ri.nodes_read
    assert rc.joins == ri.joins
    assert len(rc.provenance) == len(ri.provenance)
    assert named_rows(shape_c, rc.rows_by_type) == named_rows(shape_i, ri.rows_by_type)
    # No zero entries ever appear in rows_by_type (interpreter invariant).
    assert all(count > 0 for count in rc.rows_by_type.values())


def _dewey_walk(forest):
    """(name, dewey) in document order — inline numbering must equal
    the interpreter's renumber() pass exactly."""
    out = []

    def visit(node):
        out.append((node.name, str(node.dewey)))
        for child in node.children:
            visit(child)

    for root in forest.roots:
        visit(root)
    return out


@pytest.fixture(scope="module")
def books():
    with open(os.path.join(GUARD_DIR, "books.xml"), encoding="utf-8") as handle:
        return repro.parse_forest(handle.read())


@pytest.fixture(scope="module")
def dblp():
    return generate_dblp(60)


class TestCorpusParity:
    """Every example guard: compiled output is byte-identical."""

    @pytest.mark.parametrize("guard", corpus_guards())
    def test_corpus_guard(self, books, guard):
        assert_identical(books, guard)

    @pytest.mark.parametrize("guard", DBLP_GUARDS)
    def test_dblp_guard(self, dblp, guard):
        assert_identical(dblp, guard)

    def test_fig1a_special_types(self):
        forest = repro.parse_forest(FIG1A)
        for guard in (
            "CAST MORPH (RESTRICT name [ author ])",
            "CAST (MUTATE (NEW scribe) [ author ])",
            "CAST (TYPE-FILL MORPH author [ name isbn ])",
        ):
            assert_identical(forest, guard)


class TestTraceParity:
    """Traced runs: identical spans, counters and histograms."""

    @pytest.mark.parametrize("guard", DBLP_GUARDS)
    def test_traced_metrics_match(self, guard):
        snapshots = []
        for compile_renders in (False, True):
            interp = Interpreter(generate_dblp(40), compile_renders=compile_renders)
            plan = interp.compile(guard)
            tracer = obs.Tracer()
            with obs.tracing(tracer):
                result = interp.render_compiled(plan)
            assert (result.rendered.compiled is True) == compile_renders
            spans = [
                (
                    span.name,
                    span.attrs.get("child"),
                    span.attrs.get("anchors"),
                    span.attrs.get("candidates"),
                    span.attrs.get("pairs"),
                )
                for span in tracer.iter_spans()
                if span.name == "render.join"
            ]
            counters = {
                name: value
                for name, value in tracer.metrics.counters.items()
                if name.startswith("render.") or name == "join.comparisons"
            }
            pairs = tracer.metrics.histograms.get("join.pairs")
            snapshots.append(
                (spans, counters, (pairs.count, pairs.total) if pairs else None)
            )
        assert snapshots[0] == snapshots[1]


class TestCompiledArtifact:
    def test_source_and_describe(self, books):
        interp = Interpreter(books, compile_renders=True)
        plan = interp.compile("CAST MORPH author [ name ]")
        artifact = plan.compiled_render
        assert isinstance(artifact, CompiledRender)
        assert "def _render(index" in artifact.source_code
        assert "edges specialized" in artifact.describe()
        assert artifact.edge_plans, "edge plans recorded for EXPLAIN ANALYZE"

    def test_join_levels_and_cardinalities_recorded(self, books):
        interp = Interpreter(books, compile_renders=True)
        plan = interp.compile("CAST MORPH author [ title ]")
        joins = [e for e in plan.compiled_render.edge_plans if e["kind"] == "join"]
        assert joins and all(e["lca_level"] is not None for e in joins)
        assert all(e["anchor_rows"] > 0 and e["child_rows"] > 0 for e in joins)

    def test_rerun_is_deterministic(self, books):
        interp = Interpreter(books, compile_renders=True)
        plan = interp.compile("CAST MORPH author [ name book [ title ] ]")
        first = interp.render_compiled(plan)
        second = interp.render_compiled(plan)
        assert serialize(first.rendered.forest) == serialize(second.rendered.forest)

    def test_try_compile_falls_back_and_counts(self, books, monkeypatch):
        import repro.engine.compile as compile_module

        def boom(shape, index):
            raise RuntimeError("injected")

        monkeypatch.setattr(compile_module, "_Codegen", boom)
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            interp = Interpreter(books, compile_renders=True)
            plan = interp.compile("CAST MORPH author [ name ]")
        assert plan.compiled_render is None
        assert tracer.metrics.counters.get("render.compile_fallback") == 1
        # The transform still works — interpreted.
        result = interp.render_compiled(plan)
        assert result.rendered is not None and not result.rendered.compiled


class TestDatabaseKnob:
    def test_compile_on_by_default_and_survives_cache_hit(self, tmp_path):
        db = Database(str(tmp_path / "on.db"), durable=False)
        try:
            db.store_document("doc", repro.parse_forest(FIG1A))
            guard = "CAST MORPH author [ name ]"
            cold = db.transform("doc", guard)
            warm = db.transform("doc", guard)
            assert cold.rendered.compiled and warm.rendered.compiled
            assert db.plan_cache.hits >= 1
            assert serialize(warm.rendered.forest) == serialize(cold.rendered.forest)
        finally:
            db.close()

    def test_no_compile_knob(self, tmp_path):
        db = Database(str(tmp_path / "off.db"), durable=False, compile_renders=False)
        try:
            db.store_document("doc", repro.parse_forest(FIG1A))
            result = db.transform("doc", "CAST MORPH author [ name ]")
            assert not result.rendered.compiled
            assert result.compiled_render is None
        finally:
            db.close()

    def test_profile_reports_compiled_line(self):
        report = profile_document(FIG1A, "CAST MORPH author [ name ]")
        assert "render.compiled:" in report.pretty()
        assert "edges specialized" in report.pretty()
        uncompiled = profile_document(
            FIG1A, "CAST MORPH author [ name ]", compile_renders=False
        )
        assert "render.compiled: no (interpreted)" in uncompiled.pretty()


def _plan(guard="G", fingerprint="f" * 16, compiled_render=None):
    return CompiledPlan(
        guard=guard,
        fingerprint=fingerprint,
        target_shape=None,
        loss=None,
        evaluation=None,
        compile_seconds=0.0,
        compiled_render=compiled_render,
    )


class TestPlanCacheCarryThrough:
    def test_apply_evolution_drops_compiled_render_with_plan(self):
        cache = PlanCache(capacity=8)
        marker = object()
        cache.put(_plan("compatible-guard", "doc1", compiled_render=marker))
        cache.put(_plan("broken-guard", "doc1", compiled_render=marker))
        outcome = cache.apply_evolution(
            "doc1", {"compatible-guard": "compatible", "broken-guard": "broken"}
        )
        assert outcome == {"kept": 1, "invalidated": 1}
        kept = cache.get("compatible-guard", "doc1")
        assert kept is not None and kept.compiled_render is marker
        assert cache.get("broken-guard", "doc1") is None

    def test_invalidate_drops_compiled_render(self):
        cache = PlanCache(capacity=8)
        cache.put(_plan("g", "doc1", compiled_render=object()))
        assert cache.invalidate("doc1") == 1
        assert cache.get("g", "doc1") is None

    def test_get_or_compile_capacity_zero_short_circuits(self):
        """Bugfix: a disabled cache must compile directly, not enter the
        single-flight protocol (which would serialize all compilers
        behind a leader whose `put` is a no-op)."""
        cache = PlanCache(capacity=0)
        calls = []

        def compile_plan():
            calls.append(1)
            return _plan("g")

        first = cache.get_or_compile("g", "f" * 16, compile_plan)
        second = cache.get_or_compile("g", "f" * 16, compile_plan)
        assert first is not second and len(calls) == 2
        assert cache.misses == 2
        assert cache.contended == 0
        assert len(cache) == 0


class TestFingerprintCollisions:
    def test_int_and_str_keys_differ(self):
        """Bugfix regression: json.dumps coerces non-string dict keys to
        strings, so ``{1: x}`` and ``{"1": x}`` used to collide."""
        assert shape_fingerprint({"counts": {1: "x"}}) != shape_fingerprint(
            {"counts": {"1": "x"}}
        )

    def test_tagged_escape_cannot_be_forged(self):
        # A *string* key that happens to look like the internal tag for
        # an int key must not collide with the real int key either.
        forged = {"counts": {"\x00int\x001": "x"}}
        real = {"counts": {1: "x"}}
        assert shape_fingerprint(forged) != shape_fingerprint(real)

    def test_plain_string_descriptors_unchanged(self):
        # All-string descriptors (the normal case) hash as before:
        # stability here is what keeps stored fingerprints valid.
        descriptor = {"counts": {"0": 1}, "types": [[0, ["data"]]]}
        assert shape_fingerprint(descriptor) == shape_fingerprint(
            {"types": [[0, ["data"]]], "counts": {"0": 1}}
        )


class _CountingIndex(DocumentIndex):
    def __init__(self, forest):
        super().__init__(forest)
        self.fetches: dict[str, int] = {}

    def nodes_of(self, data_type):
        self.fetches[data_type.dotted] = self.fetches.get(data_type.dotted, 0) + 1
        return super().nodes_of(data_type)


class TestSingleFetch:
    def test_interpreter_fetches_each_source_type_once_per_render(self):
        """Bugfix: the synthesized-empty probe in ``_attach_children``
        used to fetch the source sequence and then fetch it *again* in
        ``_attach_backed``, double-counting ``nodes_read``."""
        index = _CountingIndex(repro.parse_forest(FIG1A))
        interp = Interpreter(index)
        plan = interp.compile("CAST MORPH author [ name book [ title ] ]")
        # Warm once so the memoized pair maps stop fetching internally;
        # the remaining fetches are the render's own source reads.
        interp.render_compiled(plan)
        index.fetches.clear()
        result = interp.render_compiled(plan)
        # Each type appears once in this shape, so one fetch each.
        assert all(count == 1 for count in index.fetches.values()), index.fetches
        # nodes_read agrees with the compiled engine on the same doc.
        comp = Interpreter(repro.parse_forest(FIG1A), compile_renders=True)
        cplan = comp.compile("CAST MORPH author [ name book [ title ] ]")
        cres = comp.render_compiled(cplan)
        assert result.rendered.nodes_read == cres.rendered.nodes_read
