"""Tests for guard inference (the paper's Section X open problem)."""

import repro
from repro.engine.inference import infer_guard
from repro.lang import parse_guard


def infer(query):
    return infer_guard(query).guard


class TestPathCollection:
    def test_rooted_path(self):
        assert infer("/data/author/name") == "MORPH data [ author [ name ] ]"

    def test_flwor_variable_threading(self):
        guard = infer(
            "for $a in /data/author return $a/book/title"
        )
        assert guard == "MORPH data [ author [ book [ title ] ] ]"

    def test_let_bindings(self):
        guard = infer(
            "let $books := /data/book return $books/title"
        )
        assert guard == "MORPH data [ book [ title ] ]"

    def test_nested_flwor(self):
        guard = infer(
            "for $a in /data/author return "
            "for $b in $a/book return <r>{$b/title}{$b/price}</r>"
        )
        assert guard == "MORPH data [ author [ book [ title price ] ] ]"

    def test_where_clause_contributes(self):
        guard = infer(
            "for $b in /data/book where $b/publisher/name = 'W' return $b/title"
        )
        assert "publisher [ name ]" in guard
        assert "title" in guard

    def test_predicates_contribute(self):
        guard = infer("/data/book[author/name = 'Codd']/title")
        assert "author [ name ]" in guard

    def test_doc_function_roots(self):
        guard = infer("for $a in doc('x')/dblp/article return $a/title")
        assert guard == "MORPH dblp [ article [ title ] ]"

    def test_descendant_step_starts_fresh_subtree(self):
        assert infer("//author/name") == "MORPH author [ name ]"

    def test_wildcard_becomes_star(self):
        guard = infer("for $p in /dblp/* return $p")
        assert guard == "MORPH dblp [ * ]"

    def test_attribute_step(self):
        guard = infer("/site/regions/africa/item/@id")
        assert guard.endswith("item [ id ] ] ] ]")

    def test_multiple_roots_multiple_guards(self):
        inferred = infer_guard("(/data/author, //publisher/name)")
        assert len(inferred.guards) == 2
        assert inferred.guards[0] == "MORPH data [ author ]"
        assert inferred.guards[1] == "MORPH publisher [ name ]"

    def test_shared_prefix_merges(self):
        guard = infer("(/data/book/title, /data/book/price)")
        assert guard == "MORPH data [ book [ title price ] ]"

    def test_no_paths_no_guards(self):
        assert infer_guard("1 + 2").guards == []


class TestInferredGuardsWork:
    """The inferred guard must parse, and running it must give the
    query exactly the shape it needs."""

    def test_inferred_guard_parses(self):
        guard = infer("for $a in /data/author return $a/book/title")
        parse_guard(guard)

    def test_end_to_end_on_wrong_shape(self, fig1b):
        # The query expects the normalized shape; the data is
        # publisher-centric.  Infer the guard, run the guarded query.
        query = "for $a in /data/author return $a/book/title/text()"
        inferred = infer_guard(query)
        # The inferred shape is rooted at data, with author below.
        guarded = repro.GuardedQuery(inferred.guard, query)
        outcome = guarded.run(fig1b)
        assert sorted(outcome.items) == ["X", "Y"]

    def test_text_steps_ignored(self):
        guard = infer("/data/book/title/text()")
        assert guard == "MORPH data [ book [ title ] ]"
