"""Tests for the eXist-style native XML store baseline."""

import pytest

from repro.baseline import ExistStore
from repro.errors import DocumentNotFoundError
from repro.workloads import generate_dblp
from repro.xmltree import parse_document, parse_forest

from tests.conftest import FIG1A


@pytest.fixture
def store(tmp_path):
    exist = ExistStore(str(tmp_path / "exist.db"))
    yield exist
    exist.close()


class TestDump:
    def test_dump_roundtrips(self, store):
        store.store_document("a", FIG1A)
        dumped = store.dump("a")
        assert parse_forest(dumped).canonical() == parse_document(FIG1A).canonical()

    def test_dump_reads_pages_sequentially(self, store):
        forest = generate_dblp(500)
        document = store.store_document("d", forest)
        store.drop_cache()
        before = store.stats.blocks_in
        store.dump("d")
        assert store.stats.blocks_in - before >= document.page_count

    def test_dump_cost_scales_with_size(self, tmp_path):
        costs = []
        for count in (200, 400):
            with ExistStore(str(tmp_path / f"e{count}.db")) as store:
                store.store_document("d", generate_dblp(count))
                store.drop_cache()
                base = store.stats.simulated_seconds
                store.dump("d")
                costs.append(store.stats.simulated_seconds - base)
        assert costs[1] > costs[0] * 1.5

    def test_missing_document(self, store):
        with pytest.raises(DocumentNotFoundError):
            store.dump("nope")


class TestQuery:
    def test_query_evaluates(self, store):
        store.store_document("a", FIG1A)
        items = store.query("a", "for $b in /data/book return $b/title/text()")
        assert items == ["X", "Y"]

    def test_paper_dump_query(self, store):
        store.store_document("a", FIG1A)
        items = store.query("a", 'for $b in doc("a")/data return <data>{$b}</data>')
        assert len(items) == 1

    def test_small_query_cheaper_than_deep_reconstruction(self, store):
        store.store_document("d", generate_dblp(300))
        store.drop_cache()
        base = store.stats.simulated_seconds
        store.query("d", "for $a in //author return $a")
        small = store.stats.simulated_seconds - base

        base = store.stats.simulated_seconds
        store.query(
            "d",
            "for $p in /dblp/* return <rec>{for $a in $p/author return "
            "<a>{$a/text()}{for $t in $p/title return <t>{$t/text()}"
            "{for $y in $p/year return $y}</t>}</a>}</rec>",
        )
        deep = store.stats.simulated_seconds - base
        assert deep > small

    def test_query_charges_io_and_cpu(self, store):
        store.store_document("a", FIG1A)
        before_blocks = store.stats.blocks_in
        before_cpu = store.stats.cpu_seconds
        store.query("a", "//name")
        assert store.stats.blocks_in > before_blocks
        assert store.stats.cpu_seconds > before_cpu
