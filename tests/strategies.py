"""Hypothesis strategies shared by the property-based test suites.

The core strategy generates small random XML forests over a tiny tag
alphabet.  A small alphabet is deliberate: it maximizes the chance of
repeated types, ambiguous labels and interesting closest relationships,
which is where the closeness machinery earns its keep.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.xmltree.node import XmlForest, XmlNode, element

TAGS = ["a", "b", "c", "d"]

_VALUES = st.sampled_from(["", "x", "y", "hello", "42"])


@st.composite
def xml_trees(draw, max_depth: int = 4, max_children: int = 3) -> XmlNode:
    """A random small element tree."""
    name = draw(st.sampled_from(TAGS))
    text = draw(_VALUES)
    node = element(name, text=text)
    if max_depth > 0:
        count = draw(st.integers(min_value=0, max_value=max_children))
        for _ in range(count):
            node.append(draw(xml_trees(max_depth=max_depth - 1, max_children=max_children)))
    return node


@st.composite
def xml_forests(draw, max_roots: int = 2, **tree_kwargs) -> XmlForest:
    """A random renumbered forest of one or more small trees."""
    count = draw(st.integers(min_value=1, max_value=max_roots))
    forest = XmlForest([draw(xml_trees(**tree_kwargs)) for _ in range(count)])
    return forest.renumber()


@st.composite
def documents(draw, **tree_kwargs) -> XmlForest:
    """A random single-rooted document wrapped in a fixed root tag.

    Wrapping in a constant root keeps every node reachable from one
    root, which mirrors real documents and makes closest joins total.
    """
    root = element("r")
    count = draw(st.integers(min_value=1, max_value=3))
    for _ in range(count):
        root.append(draw(xml_trees(**tree_kwargs)))
    return XmlForest([root]).renumber()
