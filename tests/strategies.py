"""Hypothesis strategies shared by the property-based test suites.

The core strategy generates small random XML forests over a tiny tag
alphabet.  A small alphabet is deliberate: it maximizes the chance of
repeated types, ambiguous labels and interesting closest relationships,
which is where the closeness machinery earns its keep.

The ``wide``/``values`` knobs and :func:`skewed_documents` exist for the
storage-update suites: incremental Dewey renumbering cares about long
sibling runs (many shifts per edit), empty-text nodes (zero-length
inline payloads) and overflow-length text (``V``-keyspace chunks that
must move with their node), none of which the default tree shapes hit
reliably.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.xmltree.node import XmlForest, XmlNode, element

TAGS = ["a", "b", "c", "d"]

_VALUES = st.sampled_from(["", "x", "y", "hello", "42"])

#: Text distribution for the update suites: heavy on the empty string
#: (sequence entries with zero-length payloads) and including one value
#: past INLINE_TEXT (1500), so shifted/deleted nodes carry overflow
#: chunks that the incremental engine must move or clear.
_SKEWED_VALUES = st.sampled_from(["", "", "", "x", "long " * 400])


@st.composite
def xml_trees(
    draw,
    max_depth: int = 4,
    max_children: int = 3,
    values: st.SearchStrategy = _VALUES,
    wide: bool = False,
) -> XmlNode:
    """A random small element tree.

    ``wide=True`` occasionally emits a long run of same-named siblings
    (the deeply-skewed shape): renumbering edge cases live at sibling
    boundaries, so edits need trees where one parent holds many more
    children than the ``max_children`` default would produce.
    """
    name = draw(st.sampled_from(TAGS))
    text = draw(values)
    node = element(name, text=text)
    if max_depth > 0:
        if wide and draw(st.booleans()):
            # A skewed run: 4-10 same-named leaf children.
            run_name = draw(st.sampled_from(TAGS))
            for _ in range(draw(st.integers(min_value=4, max_value=10))):
                node.append(element(run_name, text=draw(values)))
        count = draw(st.integers(min_value=0, max_value=max_children))
        for _ in range(count):
            node.append(
                draw(
                    xml_trees(
                        max_depth=max_depth - 1,
                        max_children=max_children,
                        values=values,
                        wide=wide,
                    )
                )
            )
    return node


@st.composite
def xml_forests(draw, max_roots: int = 2, **tree_kwargs) -> XmlForest:
    """A random renumbered forest of one or more small trees."""
    count = draw(st.integers(min_value=1, max_value=max_roots))
    forest = XmlForest([draw(xml_trees(**tree_kwargs)) for _ in range(count)])
    return forest.renumber()


@st.composite
def documents(draw, **tree_kwargs) -> XmlForest:
    """A random single-rooted document wrapped in a fixed root tag.

    Wrapping in a constant root keeps every node reachable from one
    root, which mirrors real documents and makes closest joins total.
    """
    root = element("r")
    count = draw(st.integers(min_value=1, max_value=3))
    for _ in range(count):
        root.append(draw(xml_trees(**tree_kwargs)))
    return XmlForest([root]).renumber()


@st.composite
def skewed_documents(draw, max_depth: int = 3) -> XmlForest:
    """A document biased toward renumbering edge cases.

    Wide same-named sibling runs directly under the root (every edit at
    the front shifts the whole run), empty-text nodes, and
    overflow-length text values.
    """
    root = element("r")
    for _ in range(draw(st.integers(min_value=2, max_value=8))):
        root.append(
            draw(
                xml_trees(
                    max_depth=max_depth,
                    max_children=2,
                    values=_SKEWED_VALUES,
                    wide=True,
                )
            )
        )
    return XmlForest([root]).renumber()
